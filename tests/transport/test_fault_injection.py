"""Failure injection: ARQ and RPC behaviour under random cell loss."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.topology import star_campus
from repro.transport.connection import connect_pair
from repro.transport.messages import Message, MessageType
from repro.transport.rpc import RpcClient, RpcServer, SharedProcessor


def lossy_pair(error_rate, seed=1, rto=0.02):
    """One lossy hop on the forward path.

    With ~15-cell frames, per-cell loss p gives per-attempt frame
    success (1-p)^15 — at p=0.05 that is ~46%, so a bounded retry
    budget recovers with overwhelming probability.  Loss on *both*
    hops at high p would push per-attempt success low enough that any
    finite retry bound becomes a coin flip; that regime is a link
    outage, not congestion, and is out of scope for the ARQ.
    """
    sim = Simulator()
    net, _ = star_campus(sim, ["a", "b"])
    net.links[("sw0", "b")].inject_errors(error_rate, seed)
    contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
    ca, cb = connect_pair(sim, net, "a", "b", contract, rto=rto)
    return sim, net, ca, cb


class TestArqUnderLoss:
    @given(rate=st.floats(0.005, 0.06), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_all_messages_delivered_in_order(self, rate, seed):
        sim, net, ca, cb = lossy_pair(rate, seed)
        got = []
        cb.on_message = lambda m: got.append(m.body)
        payloads = [bytes([i]) * 700 for i in range(15)]
        for p in payloads:
            ca.send(Message(type=MessageType.DATA, body=p))
        sim.run(until=60.0)
        assert got == payloads

    def test_loss_actually_happened(self):
        sim, net, ca, cb = lossy_pair(0.05)
        cb.on_message = lambda m: None
        for i in range(20):
            ca.send(Message(type=MessageType.DATA, body=bytes(600)))
        sim.run(until=60.0)
        dropped = net.links[("sw0", "b")].stats.dropped_errors
        assert dropped > 0
        assert ca.stats.retransmitted > 0
        assert cb.stats.delivered == 20

    def test_rpc_survives_lossy_path(self):
        sim, net, ca, cb = lossy_pair(0.03)
        client = RpcClient(sim, ca)
        server = RpcServer(sim, cb)
        server.register("double", lambda p: p * 2)
        results = []
        for i in range(10):
            client.call("double", i, on_result=results.append,
                        timeout=50.0)
        sim.run(until=60.0)
        assert sorted(results) == [i * 2 for i in range(10)]

    def test_error_rate_validation(self):
        sim, net, ca, cb = lossy_pair(0.0)
        with pytest.raises(ValueError):
            net.links[("a", "sw0")].inject_errors(1.0)


class TestSharedProcessor:
    def test_requests_serialise_on_one_cpu(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["c1", "c2", "server"])
        contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
        cpu = SharedProcessor(sim, service_time=0.05)
        done_at = {}
        clients = []
        for name in ("c1", "c2"):
            cc, cs = connect_pair(sim, net, name, "server", contract)
            server = RpcServer(sim, cs, processor=cpu)
            server.register("work", lambda p: "ok")
            clients.append((name, RpcClient(sim, cc)))
        for name, client in clients:
            client.call("work", on_result=lambda r, n=name:
                        done_at.__setitem__(n, sim.now))
        sim.run(until=5.0)
        # both served, but the second waited for the first's CPU slot
        assert set(done_at) == {"c1", "c2"}
        gap = abs(done_at["c1"] - done_at["c2"])
        assert gap >= 0.045
        assert cpu.jobs_done == 2

    def test_processor_utilization_tracked(self):
        sim = Simulator()
        cpu = SharedProcessor(sim, service_time=0.1)
        for _ in range(3):
            cpu.submit(lambda: None)
        sim.run()
        assert cpu.jobs_done == 3
        assert cpu.busy_time == pytest.approx(0.3)
