"""Tests for the RPC layer."""

import pytest

from repro.atm import Simulator, TrafficContract, ServiceCategory
from repro.atm.topology import star_campus
from repro.transport.connection import connect_pair
from repro.transport.rpc import RpcClient, RpcError, RpcServer


def setup_rpc(service_time=0.0, buffer_cells=1024):
    sim = Simulator()
    net, _ = star_campus(sim, ["client", "server"], buffer_cells=buffer_cells)
    contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
    cc, cs = connect_pair(sim, net, "client", "server", contract)
    client = RpcClient(sim, cc)
    server = RpcServer(sim, cs, service_time=service_time)
    return sim, client, server


class TestCalls:
    def test_simple_call(self):
        sim, client, server = setup_rpc()
        server.register("add", lambda p: p["a"] + p["b"])
        results = []
        client.call("add", {"a": 2, "b": 3}, on_result=results.append)
        sim.run(until=1.0)
        assert results == [5]

    def test_concurrent_calls_correlated(self):
        sim, client, server = setup_rpc()
        server.register("echo", lambda p: p)
        results = {}
        for i in range(10):
            client.call("echo", i, on_result=lambda r, i=i: results.__setitem__(i, r))
        sim.run(until=2.0)
        assert results == {i: i for i in range(10)}

    def test_unknown_method_errors(self):
        sim, client, server = setup_rpc()
        errors = []
        client.call("nope", on_error=errors.append)
        sim.run(until=1.0)
        assert len(errors) == 1
        assert "unknown method" in errors[0].reason

    def test_handler_exception_becomes_error(self):
        sim, client, server = setup_rpc()
        def boom(p):
            raise ValueError("kaput")
        server.register("boom", boom)
        errors = []
        client.call("boom", on_error=errors.append)
        sim.run(until=1.0)
        assert "kaput" in errors[0].reason

    def test_rpc_error_reason_preserved(self):
        sim, client, server = setup_rpc()
        def denied(p):
            raise RpcError("login", "bad student number")
        server.register("login", denied)
        errors = []
        client.call("login", on_error=errors.append)
        sim.run(until=1.0)
        assert errors[0].reason == "bad student number"

    def test_timeout_fires_when_no_response(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["client", "server"])
        contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
        cc, cs = connect_pair(sim, net, "client", "server", contract)
        client = RpcClient(sim, cc, default_timeout=0.5)
        # no server wired on cs: requests vanish into an unhandled sink
        errors = []
        pending = client.call("void", on_error=errors.append)
        sim.run(until=2.0)
        assert pending.done
        assert errors and errors[0].reason == "timed out"

    def test_service_time_delays_response(self):
        sim, client, server = setup_rpc(service_time=0.2)
        server.register("slow", lambda p: "ok")
        done_at = []
        client.call("slow", on_result=lambda r: done_at.append(sim.now))
        sim.run(until=2.0)
        assert done_at[0] >= 0.2

    def test_pending_call_records_result(self):
        sim, client, server = setup_rpc()
        server.register("answer", lambda p: 42)
        pending = client.call("answer")
        sim.run(until=1.0)
        assert pending.done and pending.result == 42 and pending.error is None

    def test_large_response_roundtrips(self):
        sim, client, server = setup_rpc()
        blob = bytes(range(256)) * 512  # 128 KB
        server.register("blob", lambda p: blob)
        results = []
        client.call("blob", on_result=results.append)
        sim.run(until=10.0)
        assert results == [blob]


class TestStreams:
    def test_stream_chunks_arrive_in_order(self):
        sim, client, server = setup_rpc()
        chunks = [bytes([i]) * 5000 for i in range(6)]
        server.register_stream("video", lambda p: chunks)
        done = []
        rx = client.open_stream("video", on_end=done.append)
        sim.run(until=10.0)
        assert rx.finished
        assert rx.data == b"".join(chunks)
        assert done == [rx]

    def test_stream_respects_chunk_size(self):
        sim, client, server = setup_rpc()
        server.chunk_size = 1000
        server.register_stream("clip", lambda p: [bytes(4500)])
        rx = client.open_stream("clip")
        sim.run(until=10.0)
        assert rx.finished
        assert len(rx.data) == 4500
        assert all(len(c) <= 1000 for c in rx.chunks)

    def test_stream_timing_recorded(self):
        sim, client, server = setup_rpc()
        server.register_stream("clip", lambda p: [bytes(100)] * 3)
        rx = client.open_stream("clip")
        sim.run(until=10.0)
        assert rx.first_chunk_at is not None
        assert rx.finished_at >= rx.first_chunk_at

    def test_stream_handler_error(self):
        sim, client, server = setup_rpc()
        def bad(p):
            raise RuntimeError("no such asset")
        server.register_stream("missing", bad)
        rx = client.open_stream("missing")
        sim.run(until=1.0)
        assert not rx.finished
        assert rx.chunks == []


class TestServerCloning:
    def test_clone_shares_registry(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["c1", "c2", "server"])
        contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
        cc1, cs1 = connect_pair(sim, net, "c1", "server", contract)
        cc2, cs2 = connect_pair(sim, net, "c2", "server", contract)
        server1 = RpcServer(sim, cs1)
        server1.register("hello", lambda p: f"hi {p}")
        server2 = server1.clone_for(cs2)
        r1, r2 = [], []
        RpcClient(sim, cc1).call("hello", "one", on_result=r1.append)
        RpcClient(sim, cc2).call("hello", "two", on_result=r2.append)
        sim.run(until=2.0)
        assert r1 == ["hi one"] and r2 == ["hi two"]
