"""Tests for paced video streaming and the playout model."""

import pytest

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.topology import star_campus
from repro.media.production import MediaProductionCenter
from repro.media.video import VideoStream
from repro.streaming import PlayoutStats, VideoPlayer, VideoStreamSender
from repro.streaming.sender import pack_frame, unpack_frame


@pytest.fixture(scope="module")
def video():
    return MediaProductionCenter().produce_video(
        "stream-test", seconds=3.0, width=64, height=64, frame_rate=10.0)


def run_stream(video, *, access_bps=10e6, preroll=0.4, lead=0.2,
               category=ServiceCategory.UBR, buffer_cells=1024,
               until=120.0):
    sim = Simulator()
    net, _ = star_campus(sim, ["server", "client"], access_bps=access_bps,
                         buffer_cells=buffer_cells)
    stream = VideoStream(video.data)
    if category is ServiceCategory.UBR:
        contract = TrafficContract(category, pcr=access_bps / 424)
    else:
        mean_cells = video.bitrate_bps() / 8 / 48
        contract = TrafficContract(category, pcr=mean_cells * 8,
                                   scr=mean_cells * 2, mbs=400)
    player = VideoPlayer(sim, preroll=preroll, skip_grace=0.5,
                         frames_expected=stream.frames)
    vc = net.open_vc("server", "client", contract, player.on_pdu)
    sender = VideoStreamSender(sim, vc, video.data, lead=lead)
    sender.start()
    sim.run(until=until)
    return sim, sender, player


class TestFrameFraming:
    def test_pack_unpack(self):
        data = pack_frame(7, 1.25, True, b"framebytes")
        index, ts, last, payload = unpack_frame(data)
        assert (index, ts, last, payload) == (7, 1.25, True, b"framebytes")


class TestSender:
    def test_all_frames_sent_at_pace(self, video):
        sim, sender, player = run_stream(video)
        stream = VideoStream(video.data)
        assert sender.frames_sent == stream.frames
        assert sender.finished

    def test_mean_bitrate_reported(self, video):
        sim = Simulator()
        net, _ = star_campus(sim, ["server", "client"])
        vc = net.open_vc("server", "client",
                         TrafficContract(ServiceCategory.UBR, pcr=1e5),
                         lambda p, i: None)
        sender = VideoStreamSender(sim, vc, video.data)
        assert sender.mean_bitrate_bps == pytest.approx(
            video.bitrate_bps(), rel=0.05)


class TestPlayer:
    def test_clean_playback_on_fast_link(self, video):
        sim, sender, player = run_stream(video, access_bps=10e6)
        assert player.finished
        assert player.stats.stall_free
        assert player.stats.frames_played == VideoStream(video.data).frames

    def test_startup_delay_close_to_preroll(self, video):
        sim, sender, player = run_stream(video, access_bps=10e6,
                                         preroll=0.7)
        assert player.stats.startup_delay == pytest.approx(0.7, abs=0.05)

    def test_starved_link_stalls(self, video):
        slow = video.bitrate_bps() * 0.4
        sim, sender, player = run_stream(video, access_bps=slow)
        assert player.stats.stalls > 0
        assert player.stats.rebuffer_time > 0
        assert player.finished  # eventually completes, degraded

    def test_stall_time_monotone_in_starvation(self, video):
        rebuffer = []
        for factor in (0.6, 0.3):
            _, _, player = run_stream(
                video, access_bps=video.bitrate_bps() * factor)
            rebuffer.append(player.stats.rebuffer_time)
        assert rebuffer[1] > rebuffer[0]

    def test_frame_loss_skipped_not_fatal(self, video):
        # tiny buffers + oversubscription cause real cell loss; lost
        # frames must be skipped after the grace period
        sim, sender, player = run_stream(
            video, access_bps=video.bitrate_bps() * 1.5,
            buffer_cells=8, lead=0.0, until=300.0)
        stats = player.stats
        assert stats.frames_played + stats.frames_skipped > 0
        assert player.finished or stats.frames_skipped > 0

    def test_delay_samples_recorded(self, video):
        sim, sender, player = run_stream(video)
        assert len(player.stats.delays) > 0
        assert all(d >= 0 for d in player.stats.delays)


class TestEmptyStreamRegression:
    """mean_bitrate_bps raised ZeroDivisionError for an empty or
    zero-duration stream; it must report 0.0 instead."""

    def _empty_stream_sender(self):
        import struct
        sim = Simulator()
        net, _ = star_campus(sim, ["server", "client"])
        vc = net.open_vc("server", "client",
                         TrafficContract(ServiceCategory.UBR, pcr=1e5),
                         lambda p, i: None)
        # a structurally valid SMPG sequence with zero frames (the
        # codec itself refuses to encode one, but a stored/truncated
        # asset can still present one to the sender)
        data = b"SMPG" + struct.pack(">HHHfB", 0, 8, 8, 10.0, 12) + bytes([60])
        return sim, VideoStreamSender(sim, vc, data)

    def test_zero_duration_bitrate_is_zero(self):
        sim, sender = self._empty_stream_sender()
        assert sender.mean_bitrate_bps == 0.0

    def test_empty_stream_start_is_harmless(self):
        sim, sender = self._empty_stream_sender()
        sender.start()
        sim.run(until=1.0)
        assert sender.frames_sent == 0


class TestPlayerMetrics:
    def test_preroll_and_lateness_recorded(self, video):
        sim, sender, player = run_stream(video)
        assert player.stats.preroll_frames > 0
        rep = sim.metrics.report()
        [preroll] = rep["player"]["preroll_fill_frames"]
        assert preroll["value"] == player.stats.preroll_frames
        assert "frame_lateness_seconds" in rep["player"]
