"""Property-based tests on MHEG engine and codec invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mheg import (
    ActionVerb, AudioContentClass, CompositeClass, ElementaryAction,
    MhegCodec, MhegEngine,
)
from repro.mheg.asn1 import decode_value, parse_value
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.mheg.runtime import RtState, _ALLOWED
from repro.util.errors import DecodingError, EncodingError, PresentationError

APP = "prop"


def mid(n):
    return MhegIdentifier(APP, n)


PRESENTATION_VERBS = [ActionVerb.RUN, ActionVerb.STOP, ActionVerb.PAUSE,
                      ActionVerb.RESUME, ActionVerb.DELETE]


class TestStateMachineInvariants:
    @given(st.lists(st.sampled_from(PRESENTATION_VERBS), min_size=1,
                    max_size=25),
           st.lists(st.floats(0.0, 3.0), min_size=0, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_random_action_sequences_never_corrupt_state(self, verbs,
                                                         advances):
        """Any sequence of presentation verbs leaves the run-time
        object in a legal state and every recorded transition is one
        the life-cycle allows."""
        engine = MhegEngine()
        engine.store(AudioContentClass(
            identifier=mid(1), content_hook="SPCM", data=b"x",
            original_duration=1.0))
        rt = engine.new_runtime(ref(APP, 1))
        advances = iter(advances)
        for verb in verbs:
            try:
                engine.apply(ElementaryAction(verb, rt.reference))
            except PresentationError:
                pass  # rejecting an illegal request is fine
            try:
                engine.advance(engine.now + next(advances))
            except StopIteration:
                pass
            if rt.state is RtState.DELETED:
                break
        # every state-change event respects the transition table
        for event in engine.events:
            if event.attribute == "state" and event.old is not None:
                assert (event.old, event.new) in {
                    (a, b) for (a, b) in _ALLOWED}

    @given(st.integers(1, 6), st.floats(0.1, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_composite_children_all_stop_eventually(self, n_children,
                                                    duration):
        """A chained composite of timed children always terminates,
        with children run exactly once, in order."""
        engine = MhegEngine()
        refs = []
        for i in range(n_children):
            engine.store(AudioContentClass(
                identifier=mid(i), content_hook="SPCM", data=b"x",
                original_duration=duration))
            refs.append(ref(APP, i))
        engine.store(CompositeClass(
            identifier=mid(100), components=refs,
            sync_spec={"kind": "chained",
                       "targets": [str(r) for r in refs]}))
        rt = engine.new_runtime(ref(APP, 100))
        engine.run(rt)
        engine.advance(duration * n_children + 1.0)
        assert rt.state is RtState.STOPPED
        starts = [e.source for e in engine.events
                  if e.attribute == "presentation" and e.new == "running"
                  and e.source != rt.ref_str]
        assert starts == [f"{APP}/{i}#1" for i in range(n_children)]

    @given(st.lists(st.tuples(st.floats(0.0, 5.0), st.floats(0.2, 2.0)),
                    min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_elementary_sync_matches_static_timeline(self, slots):
        """At every probe instant, the running children of an
        elementary composite are exactly those whose [start, end)
        covers the instant."""
        engine = MhegEngine()
        entries = []
        refs = []
        for i, (start, duration) in enumerate(slots):
            engine.store(AudioContentClass(
                identifier=mid(i), content_hook="SPCM", data=b"x",
                original_duration=duration))
            refs.append(ref(APP, i))
            entries.append({"target": f"{APP}/{i}", "time": start})
        engine.store(CompositeClass(
            identifier=mid(100), components=refs,
            sync_spec={"kind": "elementary", "entries": entries}))
        rt = engine.new_runtime(ref(APP, 100))
        engine.run(rt)
        horizon = max(s + d for s, d in slots) + 0.5
        probe = 0.05
        while probe < horizon:
            engine.advance(probe)
            expected = {i for i, (s, d) in enumerate(slots)
                        if s <= probe + 1e-9 and probe < s + d - 1e-9}
            running = {int(str(r.reference.identifier).split("/")[1])
                       for r in engine.runtimes()
                       if r.state is RtState.RUNNING
                       and r.reference.identifier.number < 100}
            assert running == expected, f"at t={probe}"
            probe += 0.4


class TestCodecFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=200)
    def test_random_bytes_never_crash_value_parser(self, data):
        """Garbage input raises DecodingError, never anything else."""
        try:
            decode_value(data)
        except DecodingError:
            pass

    @given(st.binary(max_size=300))
    @settings(max_examples=200)
    def test_random_bytes_never_crash_object_decoder(self, data):
        codec = MhegCodec()
        try:
            codec.decode(data)
        except (DecodingError, EncodingError):
            pass

    @given(st.binary(min_size=1, max_size=200), st.integers(0, 199),
           st.integers(0, 7))
    @settings(max_examples=150)
    def test_bitflip_on_valid_object_never_crashes(self, payload, pos, bit):
        codec = MhegCodec()
        obj = AudioContentClass(identifier=mid(1), content_hook="SPCM",
                                data=payload)
        clean = bytearray(codec.encode(obj))
        clean[pos % len(clean)] ^= 1 << bit
        try:
            codec.decode(bytes(clean))
        except (DecodingError, EncodingError):
            pass
