"""Tests for the MHEG class library (Fig 4.5)."""

import pytest

from repro.mheg.classes import (
    ActionClass, ActionVerb, CompositeClass, ContainerClass, ContentClass,
    DescriptorClass, ElementaryAction, GenericValueClass, LinkClass,
    LinkCondition, MultiplexedContentClass, ScriptClass, Socket, SocketKind,
    StreamDescription, class_registry,
)
from repro.mheg.classes.base import MHEG_STANDARD_ID
from repro.mheg.classes.behavior import ConditionKind
from repro.mheg.classes.interchange import ResourceRequirement
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.util.errors import EncodingError


def mid(n):
    return MhegIdentifier("test", n)


class TestBase:
    def test_standard_id_is_19(self):
        obj = GenericValueClass(identifier=mid(1), value=5)
        assert obj.standard_id == MHEG_STANDARD_ID == 19

    def test_registry_contains_the_eight_plus_extensions(self):
        names = set(class_registry())
        for required in ("ContentClass", "MultiplexedContentClass",
                         "CompositeClass", "LinkClass", "ActionClass",
                         "ScriptClass", "DescriptorClass", "ContainerClass",
                         "VideoContentClass", "GenericValueClass"):
            assert required in names


class TestContent:
    def test_exactly_one_storage_scheme(self):
        both = ContentClass(identifier=mid(1), content_hook="SIMG",
                            data=b"x", content_ref="y")
        with pytest.raises(EncodingError):
            both.validate()
        neither = ContentClass(identifier=mid(2), content_hook="SIMG")
        with pytest.raises(EncodingError):
            neither.validate()

    def test_hook_required(self):
        obj = ContentClass(identifier=mid(1), data=b"x")
        with pytest.raises(EncodingError):
            obj.validate()

    def test_included_vs_referenced(self):
        inc = ContentClass(identifier=mid(1), content_hook="SIMG", data=b"abc")
        ref_ = ContentClass(identifier=mid(2), content_hook="SIMG",
                            content_ref="img-1")
        assert inc.included and inc.payload_size() == 3
        assert not ref_.included and ref_.payload_size() == 0

    def test_multiplexed_needs_streams(self):
        obj = MultiplexedContentClass(identifier=mid(1), content_hook="SMPG",
                                      data=b"x")
        with pytest.raises(EncodingError):
            obj.validate()

    def test_multiplexed_duplicate_stream_ids(self):
        obj = MultiplexedContentClass(
            identifier=mid(1), content_hook="SMPG", data=b"x",
            streams=[StreamDescription(1, "video"),
                     StreamDescription(1, "audio")])
        with pytest.raises(EncodingError):
            obj.validate()

    def test_multiplexed_stream_lookup(self):
        obj = MultiplexedContentClass(
            identifier=mid(1), content_hook="SMPG", data=b"x",
            streams=[StreamDescription(1, "video", 1e6),
                     StreamDescription(2, "audio", 64e3)])
        assert obj.stream(2).media_kind == "audio"
        with pytest.raises(KeyError):
            obj.stream(9)


class TestActions:
    def test_parallel_schedule_uses_delays(self):
        act = ActionClass(identifier=mid(1), mode="parallel", actions=[
            ElementaryAction(ActionVerb.RUN, ref("t", 1), delay=1.0),
            ElementaryAction(ActionVerb.RUN, ref("t", 2), delay=0.5),
        ])
        assert [t for t, _ in act.schedule()] == [1.0, 0.5]

    def test_serial_schedule_accumulates(self):
        act = ActionClass(identifier=mid(1), mode="serial", actions=[
            ElementaryAction(ActionVerb.RUN, ref("t", 1), delay=1.0),
            ElementaryAction(ActionVerb.STOP, ref("t", 1), delay=2.0),
        ])
        assert [t for t, _ in act.schedule()] == [1.0, 3.0]

    def test_validation(self):
        with pytest.raises(EncodingError):
            ActionClass(identifier=mid(1), actions=[]).validate()
        with pytest.raises(EncodingError):
            ActionClass(identifier=mid(1), mode="sideways", actions=[
                ElementaryAction(ActionVerb.RUN, ref("t", 1))]).validate()
        with pytest.raises(ValueError):
            ElementaryAction(ActionVerb.RUN, ref("t", 1), delay=-1)


class TestConditions:
    def test_comparisons(self):
        c = LinkCondition(ConditionKind.TRIGGER, ref("t", 1), "value", ">", 5)
        assert c.evaluate(6) and not c.evaluate(5)
        eq = LinkCondition(ConditionKind.TRIGGER, ref("t", 1), "state",
                           "==", "running")
        assert eq.evaluate("running") and not eq.evaluate("stopped")

    def test_none_observed_fails_ordering(self):
        c = LinkCondition(ConditionKind.ADDITIONAL, ref("t", 1), "value", "<", 5)
        assert not c.evaluate(None)

    def test_bad_comparison_rejected(self):
        with pytest.raises(ValueError):
            LinkCondition(ConditionKind.TRIGGER, ref("t", 1), "value", "~", 5)


class TestLinks:
    def _action(self):
        return ActionClass(identifier=mid(99), actions=[
            ElementaryAction(ActionVerb.RUN, ref("t", 2))])

    def test_valid_link(self):
        link = LinkClass(identifier=mid(1), trigger_conditions=[
            LinkCondition(ConditionKind.TRIGGER, ref("t", 1), "selected",
                          "==", True)], effect=self._action())
        link.validate()
        assert link.sources() == [ref("t", 1)]

    def test_needs_trigger(self):
        link = LinkClass(identifier=mid(1), effect=self._action())
        with pytest.raises(EncodingError):
            link.validate()

    def test_effect_xor_effect_ref(self):
        trig = [LinkCondition(ConditionKind.TRIGGER, ref("t", 1), "selected",
                              "==", True)]
        with pytest.raises(EncodingError):
            LinkClass(identifier=mid(1), trigger_conditions=trig).validate()
        with pytest.raises(EncodingError):
            LinkClass(identifier=mid(1), trigger_conditions=trig,
                      effect=self._action(), effect_ref=ref("t", 9)).validate()

    def test_condition_kind_enforced(self):
        trig = LinkCondition(ConditionKind.ADDITIONAL, ref("t", 1),
                             "selected", "==", True)
        link = LinkClass(identifier=mid(1), trigger_conditions=[trig],
                         effect=self._action())
        with pytest.raises(EncodingError):
            link.validate()


class TestComposite:
    def test_socket_rules(self):
        with pytest.raises(ValueError):
            Socket(name="s", kind=SocketKind.EMPTY, plugged=ref("t", 1))
        with pytest.raises(ValueError):
            Socket(name="s", kind=SocketKind.PRESENTABLE)
        Socket(name="s", kind=SocketKind.PRESENTABLE, plugged=ref("t", 1))

    def test_socket_must_plug_component(self):
        comp = CompositeClass(identifier=mid(1), components=[ref("t", 1)],
                              sockets=[Socket("s", SocketKind.PRESENTABLE,
                                              ref("t", 99))])
        with pytest.raises(EncodingError):
            comp.validate()

    def test_duplicate_components_rejected(self):
        comp = CompositeClass(identifier=mid(1),
                              components=[ref("t", 1), ref("t", 1)])
        with pytest.raises(EncodingError):
            comp.validate()

    def test_layout_keys_checked(self):
        comp = CompositeClass(identifier=mid(1), components=[ref("t", 1)],
                              layout={"t/9": {"position": [0, 0]}})
        with pytest.raises(EncodingError):
            comp.validate()

    def test_socket_lookup(self):
        comp = CompositeClass(identifier=mid(1), components=[ref("t", 1)],
                              sockets=[Socket("main", SocketKind.PRESENTABLE,
                                              ref("t", 1))])
        assert comp.socket("main").plugged == ref("t", 1)
        with pytest.raises(KeyError):
            comp.socket("absent")


class TestContainerAndDescriptor:
    def test_container_finds_objects(self):
        inner = GenericValueClass(identifier=mid(5), value=1)
        cont = ContainerClass(identifier=mid(1), objects=[inner])
        assert cont.find(ref("test", 5)) is inner
        assert cont.manifest() == ["test/5"]

    def test_container_rejects_duplicates(self):
        a = GenericValueClass(identifier=mid(5), value=1)
        cont = ContainerClass(identifier=mid(1), objects=[a, a])
        with pytest.raises(EncodingError):
            cont.validate()

    def test_descriptor_negotiation(self):
        desc = DescriptorClass(
            identifier=mid(1), described=[ref("t", 1)],
            requirements=[ResourceRequirement("SMPG", peak_bitrate_bps=2e6)],
            total_size=10_000)
        ok, problems = desc.check_capabilities(
            {"decoders": ["SMPG", "SIMG"], "bandwidth_bps": 10e6,
             "storage_bytes": 1 << 20})
        assert ok and problems == []

    def test_descriptor_detects_missing_decoder(self):
        desc = DescriptorClass(identifier=mid(1), described=[ref("t", 1)],
                               requirements=[ResourceRequirement("SMPG")])
        ok, problems = desc.check_capabilities({"decoders": ["SIMG"]})
        assert not ok and "missing decoder SMPG" in problems

    def test_descriptor_detects_bandwidth_and_storage(self):
        desc = DescriptorClass(
            identifier=mid(1), described=[ref("t", 1)],
            requirements=[ResourceRequirement("SMPG", peak_bitrate_bps=5e6)],
            total_size=100)
        ok, problems = desc.check_capabilities(
            {"decoders": ["SMPG"], "bandwidth_bps": 1e6, "storage_bytes": 10})
        assert not ok and len(problems) == 2

    def test_empty_descriptor_invalid(self):
        with pytest.raises(EncodingError):
            DescriptorClass(identifier=mid(1)).validate()


class TestScript:
    def test_valid_script_parses(self):
        script = ScriptClass(identifier=mid(1), source="""
            # create and run a video
            new video course/1 as 1 on main
            run course/1#1
            wait 2.0
            set course/1#1 volume 50
            stop course/1#1
        """)
        statements = script.parse()
        assert [s.verb for s in statements] == ["new", "run", "wait", "set",
                                                "stop"]

    def test_unknown_statement_rejected(self):
        script = ScriptClass(identifier=mid(1), source="explode course/1")
        with pytest.raises(EncodingError):
            script.validate()

    def test_bad_wait_rejected(self):
        script = ScriptClass(identifier=mid(1), source="wait never")
        with pytest.raises(EncodingError):
            script.validate()

    def test_bad_reference_rejected(self):
        script = ScriptClass(identifier=mid(1), source="run notaref")
        with pytest.raises(EncodingError):
            script.validate()

    def test_malformed_new_rejected(self):
        script = ScriptClass(identifier=mid(1),
                             source="new video course/1 at 1 on main")
        with pytest.raises(EncodingError):
            script.validate()

    def test_unknown_language_rejected(self):
        script = ScriptClass(identifier=mid(1), language="tcl", source="")
        with pytest.raises(EncodingError):
            script.validate()
