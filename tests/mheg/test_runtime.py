"""Unit tests for run-time objects, channels, and the transition table."""

import pytest

from repro.mheg import AudioContentClass, GenericValueClass, ScriptClass
from repro.mheg.classes import ActionClass, ActionVerb, ElementaryAction
from repro.mheg.classes.composite import CompositeClass
from repro.mheg.classes.content import MultiplexedContentClass, StreamDescription
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.mheg.runtime import Channel, RtKind, RtObject, RtState, rt_kind_for
from repro.util.errors import PresentationError


def mid(n):
    return MhegIdentifier("rt", n)


class TestRtKind:
    def test_kind_mapping(self):
        assert rt_kind_for(AudioContentClass(
            identifier=mid(1), content_hook="SPCM", data=b"x")) \
            is RtKind.CONTENT
        assert rt_kind_for(MultiplexedContentClass(
            identifier=mid(2), content_hook="SMPG", data=b"x",
            streams=[StreamDescription(1, "video")])) is RtKind.MULTIPLEXED
        assert rt_kind_for(CompositeClass(identifier=mid(3))) \
            is RtKind.COMPOSITE
        assert rt_kind_for(ScriptClass(identifier=mid(4))) is RtKind.SCRIPT
        assert rt_kind_for(GenericValueClass(identifier=mid(5))) \
            is RtKind.VALUE

    def test_links_have_no_runtime_form(self):
        action = ActionClass(identifier=mid(6), actions=[
            ElementaryAction(ActionVerb.RUN, ref("rt", 1))])
        with pytest.raises(PresentationError):
            rt_kind_for(action)


class TestTransitions:
    def _rt(self):
        model = AudioContentClass(identifier=mid(1), content_hook="SPCM",
                                  data=b"x")
        return RtObject(reference=ref("rt", 1, 1), model=model,
                        kind=RtKind.CONTENT)

    def test_legal_cycle(self):
        rt = self._rt()
        rt.transition(RtState.RUNNING)
        rt.transition(RtState.PAUSED)
        rt.transition(RtState.RUNNING)
        rt.transition(RtState.STOPPED)
        rt.transition(RtState.RUNNING)   # re-run from stopped
        rt.transition(RtState.DELETED)

    def test_illegal_transitions_rejected(self):
        rt = self._rt()
        with pytest.raises(PresentationError):
            rt.transition(RtState.PAUSED)       # inactive -> paused
        rt.transition(RtState.RUNNING)
        rt.transition(RtState.STOPPED)
        with pytest.raises(PresentationError):
            rt.transition(RtState.PAUSED)       # stopped -> paused

    def test_deleted_is_terminal(self):
        rt = self._rt()
        rt.transition(RtState.DELETED)
        with pytest.raises(PresentationError):
            rt.transition(RtState.RUNNING)

    def test_same_state_is_noop(self):
        rt = self._rt()
        assert rt.transition(RtState.INACTIVE) is RtState.INACTIVE

    def test_requires_rt_reference(self):
        model = AudioContentClass(identifier=mid(1), content_hook="SPCM",
                                  data=b"x")
        with pytest.raises(PresentationError):
            RtObject(reference=ref("rt", 1), model=model,
                     kind=RtKind.CONTENT)

    def test_presentation_status(self):
        rt = self._rt()
        assert rt.presentation_status == "not-running"
        rt.transition(RtState.RUNNING)
        assert rt.presentation_status == "running"
        rt.transition(RtState.PAUSED)
        assert rt.presentation_status == "not-running"


class TestChannel:
    def test_enter_leave_zorder(self):
        ch = Channel("main")
        ch.enter("a")
        ch.enter("b")
        ch.enter("a")  # idempotent, keeps position
        assert ch.presented == ["a", "b"]
        ch.leave("a")
        assert ch.presented == ["b"]
        ch.leave("ghost")  # no error
