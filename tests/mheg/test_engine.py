"""Tests for the MHEG engine: lifecycle, actions, links, scripts."""

import pytest

from repro.atm.simulator import Simulator
from repro.mheg import (
    ActionClass, ActionVerb, AudioContentClass, CompositeClass,
    ContainerClass, DescriptorClass, ElementaryAction, GenericValueClass,
    ImageContentClass, LinkClass, MhegCodec, MhegEngine, ScriptClass,
)
from repro.mheg.classes.behavior import ConditionKind, LinkCondition
from repro.mheg.classes.composite import Socket, SocketKind
from repro.mheg.classes.interchange import ResourceRequirement
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.mheg.runtime import RtState
from repro.util.errors import PresentationError

APP = "t"


def mid(n):
    return MhegIdentifier(APP, n)


def image(n, **kw):
    return ImageContentClass(identifier=mid(n), content_hook="SIMG",
                             data=b"img", **kw)


def audio(n, duration=2.0):
    return AudioContentClass(identifier=mid(n), content_hook="SPCM",
                             data=b"pcm", original_duration=duration)


class TestObjectStore:
    def test_receive_decodes_and_stores(self):
        eng = MhegEngine()
        data = MhegCodec().encode(image(1))
        obj = eng.receive(data)
        assert eng.knows(ref(APP, 1))
        assert eng.get(ref(APP, 1)) == obj

    def test_container_unpacked(self):
        eng = MhegEngine()
        cont = ContainerClass(identifier=mid(9),
                              objects=[image(1), audio(2)])
        eng.receive(MhegCodec().encode(cont))
        assert eng.knows(ref(APP, 1)) and eng.knows(ref(APP, 2))
        assert eng.knows(ref(APP, 9))

    def test_unknown_object_raises(self):
        with pytest.raises(PresentationError):
            MhegEngine().get(ref(APP, 404))

    def test_reencode_equivalent(self):
        eng = MhegEngine()
        eng.store(image(1))
        again = MhegCodec().decode(eng.encode(ref(APP, 1)))
        assert again == eng.get(ref(APP, 1))


class TestPreparation:
    def test_prepare_included_content(self):
        eng = MhegEngine()
        eng.store(image(1))
        eng.prepare(ref(APP, 1))
        assert eng.is_prepared(ref(APP, 1))
        assert eng.content_bytes(ref(APP, 1)) == b"img"

    def test_prepare_referenced_content_uses_resolver(self):
        eng = MhegEngine()
        eng.store(ImageContentClass(identifier=mid(1), content_hook="SIMG",
                                    content_ref="img-key"))
        eng.content_resolver = lambda key: f"fetched:{key}".encode()
        eng.prepare(ref(APP, 1))
        assert eng.content_bytes(ref(APP, 1)) == b"fetched:img-key"

    def test_prepare_referenced_without_resolver_fails(self):
        eng = MhegEngine()
        eng.store(ImageContentClass(identifier=mid(1), content_hook="SIMG",
                                    content_ref="img-key"))
        with pytest.raises(PresentationError):
            eng.prepare(ref(APP, 1))

    def test_unprepared_referenced_content_bytes_fails(self):
        eng = MhegEngine()
        eng.store(ImageContentClass(identifier=mid(1), content_hook="SIMG",
                                    content_ref="k"))
        with pytest.raises(PresentationError):
            eng.content_bytes(ref(APP, 1))

    def test_destroy_removes(self):
        eng = MhegEngine()
        eng.store(image(1))
        eng.prepare(ref(APP, 1))
        eng.destroy(ref(APP, 1))
        assert not eng.knows(ref(APP, 1))

    def test_negotiation(self):
        eng = MhegEngine()
        desc = DescriptorClass(identifier=mid(1), described=[ref(APP, 2)],
                               requirements=[ResourceRequirement("SMPG")])
        ok, _ = eng.negotiate(desc)
        assert ok
        desc2 = DescriptorClass(identifier=mid(2), described=[ref(APP, 2)],
                                requirements=[ResourceRequirement("H261")])
        ok2, problems = eng.negotiate(desc2)
        assert not ok2 and problems


class TestRuntimeLifecycle:
    def test_new_creates_inactive_instance(self):
        eng = MhegEngine()
        eng.store(image(1))
        rt = eng.new_runtime(ref(APP, 1))
        assert rt.state is RtState.INACTIVE
        assert rt.reference.rt_tag == 1

    def test_multiple_instances_of_one_model(self):
        eng = MhegEngine()
        eng.store(image(1))
        a = eng.new_runtime(ref(APP, 1))
        b = eng.new_runtime(ref(APP, 1))
        assert a.reference != b.reference
        # "the activation of a runtime-object does not affect the model"
        eng.run(a)
        assert b.state is RtState.INACTIVE

    def test_explicit_rt_tag(self):
        eng = MhegEngine()
        eng.store(image(1))
        rt = eng.new_runtime(ref(APP, 1), rt_tag=7)
        assert rt.ref_str == "t/1#7"
        with pytest.raises(PresentationError):
            eng.new_runtime(ref(APP, 1), rt_tag=7)

    def test_run_stop_cycle_and_channel(self):
        eng = MhegEngine()
        eng.store(image(1))
        rt = eng.new_runtime(ref(APP, 1))
        eng.run(rt)
        assert rt.state is RtState.RUNNING
        assert rt.ref_str in eng.channels["main"].presented
        eng.stop(rt)
        assert rt.state is RtState.STOPPED
        assert rt.ref_str not in eng.channels["main"].presented

    def test_unknown_channel_rejected(self):
        eng = MhegEngine()
        eng.store(image(1))
        with pytest.raises(PresentationError):
            eng.new_runtime(ref(APP, 1), channel="nowhere")

    def test_auto_stop_after_duration(self):
        eng = MhegEngine()
        eng.store(audio(1, duration=2.0))
        rt = eng.new_runtime(ref(APP, 1))
        eng.run(rt)
        eng.advance(1.9)
        assert rt.state is RtState.RUNNING
        eng.advance(2.1)
        assert rt.state is RtState.STOPPED

    def test_speed_scales_duration(self):
        eng = MhegEngine()
        eng.store(audio(1, duration=2.0))
        rt = eng.new_runtime(ref(APP, 1))
        rt.speed = 2.0
        eng.run(rt)
        eng.advance(1.1)
        assert rt.state is RtState.STOPPED

    def test_pause_resume_preserves_remaining_time(self):
        eng = MhegEngine()
        eng.store(audio(1, duration=2.0))
        rt = eng.new_runtime(ref(APP, 1))
        eng.run(rt)
        eng.advance(1.0)
        eng.pause(rt)
        eng.advance(5.0)  # long pause; no auto-stop may fire
        assert rt.state is RtState.PAUSED
        eng.resume(rt)
        eng.advance(5.5)
        assert rt.state is RtState.RUNNING
        eng.advance(6.1)  # 1 second of playback left after resume at t=5
        assert rt.state is RtState.STOPPED

    def test_delete_removes_instance(self):
        eng = MhegEngine()
        eng.store(image(1))
        rt = eng.new_runtime(ref(APP, 1))
        eng.apply(ElementaryAction(ActionVerb.DELETE, ref(APP, 1, 1)))
        assert rt.state is RtState.DELETED
        with pytest.raises(PresentationError):
            eng.runtime(ref(APP, 1, 1))

    def test_sim_attached_engine_uses_simulated_time(self):
        sim = Simulator()
        eng = MhegEngine(sim=sim)
        eng.store(audio(1, duration=2.0))
        rt = eng.new_runtime(ref(APP, 1))
        eng.run(rt)
        sim.run(until=3.0)
        assert rt.state is RtState.STOPPED
        with pytest.raises(PresentationError):
            eng.advance(1.0)

    def test_link_has_no_runtime_form(self):
        eng = MhegEngine()
        act = ActionClass(identifier=mid(5), actions=[
            ElementaryAction(ActionVerb.RUN, ref(APP, 1))])
        eng.store(act)
        with pytest.raises(PresentationError):
            eng.new_runtime(ref(APP, 5))


class TestRenditionAndValues:
    def test_set_position_size_volume_speed(self):
        eng = MhegEngine()
        eng.store(image(1))
        rt = eng.new_runtime(ref(APP, 1))
        eng.apply(ElementaryAction(ActionVerb.SET_POSITION, rt.reference,
                                   parameters={"value": [10, 20]}))
        eng.apply(ElementaryAction(ActionVerb.SET_SIZE, rt.reference,
                                   parameters={"value": [320, 240]}))
        eng.apply(ElementaryAction(ActionVerb.SET_VOLUME, rt.reference,
                                   parameters={"value": 55}))
        eng.apply(ElementaryAction(ActionVerb.SET_SPEED, rt.reference,
                                   parameters={"value": 1.5}))
        assert rt.position == [10, 20] and rt.size == [320, 240]
        assert rt.volume == 55 and rt.speed == 1.5

    def test_invalid_speed_rejected(self):
        eng = MhegEngine()
        eng.store(image(1))
        rt = eng.new_runtime(ref(APP, 1))
        with pytest.raises(PresentationError):
            eng.apply(ElementaryAction(ActionVerb.SET_SPEED, rt.reference,
                                       parameters={"value": 0}))

    def test_generic_value_runtime_copy(self):
        eng = MhegEngine()
        eng.store(GenericValueClass(identifier=mid(1), value=10))
        rt = eng.new_runtime(ref(APP, 1))
        eng.apply(ElementaryAction(ActionVerb.SET_VALUE, rt.reference,
                                   parameters={"value": 99}))
        assert rt.value == 99
        # model unchanged
        assert eng.get(ref(APP, 1)).value == 10

    def test_presentation_defaults_from_model(self):
        eng = MhegEngine()
        eng.store(ImageContentClass(
            identifier=mid(1), content_hook="SIMG", data=b"x",
            presentation={"position": [5, 6], "size": [100, 50]}))
        rt = eng.new_runtime(ref(APP, 1))
        assert rt.position == [5, 6] and rt.size == [100, 50]


class TestInteractionAndLinks:
    def _selectable_button(self, eng, n=1):
        eng.store(image(n))
        rt = eng.new_runtime(ref(APP, n))
        rt.selectable = True
        return rt

    def test_select_requires_selectable(self):
        eng = MhegEngine()
        eng.store(image(1))
        rt = eng.new_runtime(ref(APP, 1))
        with pytest.raises(PresentationError):
            eng.select(rt)

    def test_link_fires_on_selection(self):
        eng = MhegEngine()
        button = self._selectable_button(eng, 1)
        eng.store(image(2))
        target = eng.new_runtime(ref(APP, 2))
        link = LinkClass(
            identifier=mid(10),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 1), "selected", "==", True)],
            effect=ActionClass(identifier=mid(11), actions=[
                ElementaryAction(ActionVerb.RUN, ref(APP, 2))]))
        eng.store(link)
        eng.arm_link(ref(APP, 10))
        eng.select(button)
        assert target.state is RtState.RUNNING

    def test_additional_condition_gates_firing(self):
        eng = MhegEngine()
        button = self._selectable_button(eng, 1)
        eng.store(image(2))
        target = eng.new_runtime(ref(APP, 2))
        eng.store(image(3))
        gate = eng.new_runtime(ref(APP, 3))
        link = LinkClass(
            identifier=mid(10),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 1), "selected", "==", True)],
            additional_conditions=[LinkCondition(
                ConditionKind.ADDITIONAL, gate.reference, "presentation",
                "==", "running")],
            effect=ActionClass(identifier=mid(11), actions=[
                ElementaryAction(ActionVerb.RUN, ref(APP, 2))]))
        eng.store(link)
        eng.arm_link(ref(APP, 10))
        eng.select(button)                       # gate not running yet
        assert target.state is RtState.INACTIVE
        eng.run(gate)
        eng.select(button)
        assert target.state is RtState.RUNNING

    def test_once_link_disarms(self):
        eng = MhegEngine()
        button = self._selectable_button(eng, 1)
        eng.store(GenericValueClass(identifier=mid(2), value=0))
        counter = eng.new_runtime(ref(APP, 2))
        link = LinkClass(
            identifier=mid(10),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 1), "selected", "==", True)],
            effect=ActionClass(identifier=mid(11), actions=[
                ElementaryAction(ActionVerb.SET_VALUE, ref(APP, 2),
                                 parameters={"value": 1})]),
            once=True)
        eng.store(link)
        eng.arm_link(ref(APP, 10))
        eng.select(button)
        counter.value = 0  # reset manually
        eng.select(button)  # disarmed: must not fire again
        assert counter.value == 0

    def test_effect_ref_resolved_from_store(self):
        eng = MhegEngine()
        button = self._selectable_button(eng, 1)
        eng.store(image(2))
        target = eng.new_runtime(ref(APP, 2))
        eng.store(ActionClass(identifier=mid(11), actions=[
            ElementaryAction(ActionVerb.RUN, ref(APP, 2))]))
        link = LinkClass(
            identifier=mid(10),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 1), "selected", "==", True)],
            effect_ref=ref(APP, 11))
        eng.store(link)
        eng.arm_link(ref(APP, 10))
        eng.select(button)
        assert target.state is RtState.RUNNING

    def test_delayed_actions_schedule(self):
        eng = MhegEngine()
        eng.store(image(1))
        rt = eng.new_runtime(ref(APP, 1))
        act = ActionClass(identifier=mid(5), actions=[
            ElementaryAction(ActionVerb.RUN, rt.reference, delay=1.0)])
        eng.execute_action(act)
        assert rt.state is RtState.INACTIVE
        eng.advance(1.5)
        assert rt.state is RtState.RUNNING

    def test_disarm_link(self):
        eng = MhegEngine()
        button = self._selectable_button(eng, 1)
        eng.store(image(2))
        target = eng.new_runtime(ref(APP, 2))
        link = LinkClass(
            identifier=mid(10),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 1), "selected", "==", True)],
            effect=ActionClass(identifier=mid(11), actions=[
                ElementaryAction(ActionVerb.RUN, ref(APP, 2))]))
        eng.store(link)
        eng.arm_link(ref(APP, 10))
        eng.disarm_link(ref(APP, 10))
        eng.select(button)
        assert target.state is RtState.INACTIVE


class TestComposites:
    def _scene(self, eng, sync_spec=None, n0=1):
        eng.store(audio(n0, duration=1.0))
        eng.store(audio(n0 + 1, duration=1.0))
        comp = CompositeClass(
            identifier=mid(n0 + 10),
            components=[ref(APP, n0), ref(APP, n0 + 1)],
            sync_spec=sync_spec)
        eng.store(comp)
        return eng.new_runtime(ref(APP, n0 + 10))

    def test_new_composite_instantiates_children(self):
        eng = MhegEngine()
        rt = self._scene(eng)
        children = eng.children_of(rt)
        assert set(children) == {"t/1", "t/2"}

    def test_default_serial_playback(self):
        eng = MhegEngine()
        rt = self._scene(eng)
        eng.run(rt)
        first = eng.runtime(ref(APP, 1, 1))
        second = eng.runtime(ref(APP, 2, 1))
        assert first.state is RtState.RUNNING
        assert second.state is RtState.INACTIVE
        eng.advance(1.5)   # first auto-stops at t=1 -> chain runs second
        assert first.state is RtState.STOPPED
        assert second.state is RtState.RUNNING

    def test_atomic_parallel(self):
        eng = MhegEngine()
        rt = self._scene(eng, {"kind": "atomic", "mode": "parallel",
                               "first": "t/1", "second": "t/2"})
        eng.run(rt)
        assert eng.runtime(ref(APP, 1, 1)).state is RtState.RUNNING
        assert eng.runtime(ref(APP, 2, 1)).state is RtState.RUNNING

    def test_elementary_timeline(self):
        eng = MhegEngine()
        rt = self._scene(eng, {"kind": "elementary", "entries": [
            {"target": "t/1", "time": 0.0},
            {"target": "t/2", "time": 2.0}]})
        eng.run(rt)
        assert eng.runtime(ref(APP, 1, 1)).state is RtState.RUNNING
        assert eng.runtime(ref(APP, 2, 1)).state is RtState.INACTIVE
        eng.advance(2.5)
        assert eng.runtime(ref(APP, 2, 1)).state is RtState.RUNNING

    def test_cyclic_repeats(self):
        eng = MhegEngine()
        eng.store(audio(1, duration=0.3))
        comp = CompositeClass(identifier=mid(10), components=[ref(APP, 1)],
                              sync_spec={"kind": "cyclic", "target": "t/1",
                                         "period": 1.0, "repetitions": 3})
        eng.store(comp)
        rt = eng.new_runtime(ref(APP, 10))
        eng.run(rt)
        eng.advance(5.0)
        child_ref = eng.children_of(rt)["t/1"]
        runs = [e for e in eng.events
                if e.source == child_ref and e.attribute == "presentation"
                and e.new == "running"]
        assert len(runs) == 3

    def test_stop_composite_stops_children_and_disarms(self):
        eng = MhegEngine()
        rt = self._scene(eng, {"kind": "atomic", "mode": "parallel",
                               "first": "t/1", "second": "t/2"})
        eng.run(rt)
        eng.stop(rt)
        assert eng.runtime(ref(APP, 1, 1)).state is RtState.STOPPED
        assert eng.runtime(ref(APP, 2, 1)).state is RtState.STOPPED

    def test_stopped_composite_cancels_pending_schedule(self):
        eng = MhegEngine()
        rt = self._scene(eng, {"kind": "elementary", "entries": [
            {"target": "t/1", "time": 0.0},
            {"target": "t/2", "time": 2.0}]})
        eng.run(rt)
        eng.advance(0.5)
        eng.stop(rt)
        eng.advance(3.0)
        assert eng.runtime(ref(APP, 2, 1)).state is RtState.INACTIVE

    def test_layout_applied_to_children(self):
        """Spatial synchronisation: the composite's layout overrides the
        children's own presentation geometry (Fig 4.4 layout structure)."""
        eng = MhegEngine()
        eng.store(image(1))
        eng.store(image(2))
        comp = CompositeClass(
            identifier=mid(10), components=[ref(APP, 1), ref(APP, 2)],
            layout={"t/1": {"position": [50, 60], "size": [320, 240]},
                    "t/2": {"position": [400, 60]}})
        eng.store(comp)
        rt = eng.new_runtime(ref(APP, 10))
        first = eng.runtime(ref(APP, 1, 1))
        second = eng.runtime(ref(APP, 2, 1))
        assert first.position == [50, 60] and first.size == [320, 240]
        assert second.position == [400, 60]

    def test_sockets_plugged_at_instantiation(self):
        eng = MhegEngine()
        eng.store(image(1))
        comp = CompositeClass(
            identifier=mid(10), components=[ref(APP, 1)],
            sockets=[Socket("pic", SocketKind.PRESENTABLE, ref(APP, 1)),
                     Socket("spare", SocketKind.EMPTY)])
        eng.store(comp)
        rt = eng.new_runtime(ref(APP, 10))
        assert rt.plugged["pic"] == "t/1#1"
        assert rt.plugged["spare"] is None

    def test_delete_composite_deletes_children(self):
        eng = MhegEngine()
        rt = self._scene(eng)
        eng.apply(ElementaryAction(ActionVerb.DELETE, rt.reference))
        with pytest.raises(PresentationError):
            eng.runtime(ref(APP, 1, 1))


class TestScripts:
    def test_script_drives_presentation(self):
        eng = MhegEngine()
        eng.store(image(1))
        script = ScriptClass(identifier=mid(5), source="""
            new image t/1 as 9 on main
            run t/1#9
            wait 1.0
            set t/1#9 position 30,40
            stop t/1#9
        """)
        eng.store(script)
        rt_script = eng.new_runtime(ref(APP, 5))
        eng.run(rt_script)
        presented = eng.runtime(ref(APP, 1, 9))
        assert presented.state is RtState.RUNNING
        eng.advance(1.5)
        assert presented.state is RtState.STOPPED
        assert presented.position == [30, 40]

    def test_deactivate_stops_script(self):
        eng = MhegEngine()
        eng.store(image(1))
        script = ScriptClass(identifier=mid(5), source="""
            new image t/1 as 9 on main
            wait 5.0
            run t/1#9
        """)
        eng.store(script)
        rt_script = eng.new_runtime(ref(APP, 5))
        eng.run(rt_script)
        eng.advance(1.0)
        eng.deactivate_script(rt_script)
        eng.advance(10.0)
        assert eng.runtime(ref(APP, 1, 9)).state is RtState.INACTIVE

    def test_script_completion_emits_done(self):
        eng = MhegEngine()
        script = ScriptClass(identifier=mid(5), source="wait 0.5")
        eng.store(script)
        rt = eng.new_runtime(ref(APP, 5))
        eng.run(rt)
        eng.advance(1.0)
        done = [e for e in eng.events if e.attribute == "activation"
                and e.new == "done"]
        assert len(done) == 1


class TestEventLog:
    def test_events_recorded_with_time(self):
        eng = MhegEngine()
        eng.store(audio(1, duration=1.0))
        rt = eng.new_runtime(ref(APP, 1))
        eng.run(rt)
        eng.advance(2.0)
        stops = [e for e in eng.events if e.attribute == "presentation"
                 and e.new == "not-running"]
        assert stops and stops[0].time == pytest.approx(1.0)

    def test_subscribers_notified(self):
        eng = MhegEngine()
        seen = []
        eng.subscribe(seen.append)
        eng.store(image(1))
        eng.prepare(ref(APP, 1))
        assert any(e.attribute == "prepared" for e in seen)
