"""Tests for the BER encoder/decoder."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.mheg import asn1
from repro.mheg.asn1 import (
    APPLICATION, CONTEXT, UNIVERSAL, Tlv, application, ber_integer,
    ber_octets, ber_sequence, ber_utf8, context, decode_tlv_exact,
    decode_value, encode_tlv, encode_value,
)
from repro.util.errors import DecodingError, EncodingError


class TestIdentifierOctets:
    def test_low_tag_roundtrip(self):
        tlv = Tlv(UNIVERSAL, 2, False, content=b"\x05")
        back = decode_tlv_exact(encode_tlv(tlv))
        assert (back.tag_class, back.number, back.constructed) == (UNIVERSAL, 2, False)

    def test_high_tag_number(self):
        tlv = Tlv(CONTEXT, 1234, True, children=[ber_integer(1)])
        back = decode_tlv_exact(encode_tlv(tlv))
        assert back.number == 1234 and back.tag_class == CONTEXT

    def test_tag_classes_preserved(self):
        for klass in (UNIVERSAL, APPLICATION, CONTEXT, 3):
            tlv = Tlv(klass, 7, False, content=b"x")
            assert decode_tlv_exact(encode_tlv(tlv)).tag_class == klass

    def test_bad_class_rejected(self):
        with pytest.raises(EncodingError):
            encode_tlv(Tlv(4, 1, False))


class TestLengths:
    def test_short_form(self):
        data = encode_tlv(ber_octets(b"x" * 127))
        assert data[1] == 127

    def test_long_form(self):
        data = encode_tlv(ber_octets(b"x" * 300))
        assert data[1] == 0x82  # two length octets follow
        back = decode_tlv_exact(data)
        assert len(back.content) == 300

    def test_truncated_content_rejected(self):
        data = encode_tlv(ber_octets(b"hello"))
        with pytest.raises(DecodingError):
            decode_tlv_exact(data[:-2])

    def test_trailing_bytes_rejected(self):
        data = encode_tlv(ber_octets(b"hello"))
        with pytest.raises(DecodingError):
            decode_tlv_exact(data + b"\x00")

    def test_indefinite_length_rejected(self):
        with pytest.raises(DecodingError):
            decode_tlv_exact(b"\x30\x80\x00\x00")


class TestPrimitives:
    @pytest.mark.parametrize("value", [0, 1, -1, 127, 128, -128, -129,
                                       2**40, -(2**40)])
    def test_integer_roundtrip(self, value):
        assert asn1.read_integer(decode_tlv_exact(
            encode_tlv(ber_integer(value)))) == value

    def test_boolean(self):
        for v in (True, False):
            assert asn1.read_boolean(decode_tlv_exact(
                encode_tlv(asn1.ber_boolean(v)))) is v

    def test_real_nr3(self):
        for v in (0.0, 1.5, -3.25, 1e-9, 2.5e17):
            tlv = decode_tlv_exact(encode_tlv(asn1.ber_real(v)))
            assert asn1.read_real(tlv) == v

    def test_utf8(self):
        s = "café 中文 — MHEG"
        assert asn1.read_utf8(decode_tlv_exact(
            encode_tlv(ber_utf8(s)))) == s

    def test_null(self):
        tlv = decode_tlv_exact(encode_tlv(asn1.ber_null()))
        assert tlv.number == asn1.TAG_NULL and tlv.content == b""

    def test_type_mismatch_raises(self):
        tlv = decode_tlv_exact(encode_tlv(ber_integer(5)))
        with pytest.raises(DecodingError):
            asn1.read_utf8(tlv)


class TestConstructed:
    def test_nested_sequences(self):
        tlv = ber_sequence([ber_integer(1),
                            ber_sequence([ber_utf8("inner")]),
                            ber_octets(b"data")])
        back = decode_tlv_exact(encode_tlv(tlv))
        assert len(back.children) == 3
        assert asn1.read_utf8(back.child(1).child(0)) == "inner"

    def test_application_wrapper(self):
        tlv = application(8, [ber_integer(42)])
        back = decode_tlv_exact(encode_tlv(tlv))
        assert back.tag_class == APPLICATION and back.number == 8

    def test_missing_child_reported(self):
        back = decode_tlv_exact(encode_tlv(ber_sequence([])))
        with pytest.raises(DecodingError):
            back.child(0)


class TestValueMapping:
    CASES = [None, True, False, 0, -5, 2**64, 3.25, "", "text", b"",
             b"\x00\xff", [], [1, "two", None], {"a": 1, "b": [True]},
             {"nested": {"deep": b"bytes"}}]

    @pytest.mark.parametrize("value", CASES, ids=repr)
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_dict_key_order_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(decode_value(encode_value(value))) == ["z", "a", "m"]

    def test_non_str_key_rejected(self):
        with pytest.raises(EncodingError):
            encode_value({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(EncodingError):
            encode_value(object())

    def test_depth_guard(self):
        v = []
        for _ in range(40):
            v = [v]
        with pytest.raises(EncodingError):
            encode_value(v)

    ber_values = st.recursive(
        st.none() | st.booleans() | st.integers() |
        st.floats(allow_nan=False, allow_infinity=False) |
        st.text(max_size=20) | st.binary(max_size=40),
        lambda children: st.lists(children, max_size=4) |
        st.dictionaries(st.text(max_size=6), children, max_size=4),
        max_leaves=20)

    @given(ber_values)
    def test_roundtrip_property(self, value):
        assert decode_value(encode_value(value)) == value
