"""Tests for the MHEG interchange codec (ASN.1 and SGML notations)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mheg import (
    ActionClass, ActionVerb, AudioContentClass, CompositeClass,
    ContainerClass, ContentClass, DescriptorClass, ElementaryAction,
    GenericValueClass, ImageContentClass, LinkClass, MhegCodec,
    MultiplexedContentClass, ScriptClass, Socket, SocketKind,
)
from repro.mheg.classes.behavior import ConditionKind, LinkCondition
from repro.mheg.classes.content import StreamDescription
from repro.mheg.classes.interchange import ResourceRequirement
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.util.errors import DecodingError, EncodingError

codec = MhegCodec()


def mid(n):
    return MhegIdentifier("app", n)


def sample_objects():
    """One representative instance of every interchanged class."""
    content = ImageContentClass(
        identifier=mid(1), content_hook="SIMG", data=b"\x00\x01binary\xff",
        original_size=[128, 96], presentation={"position": [10, 20]})
    referenced = AudioContentClass(
        identifier=mid(2), content_hook="SPCM", content_ref="audio-7",
        original_duration=3.5, original_volume=80)
    mux = MultiplexedContentClass(
        identifier=mid(3), content_hook="SMPG", content_ref="movie-1",
        streams=[StreamDescription(1, "video", 1.5e6),
                 StreamDescription(2, "audio", 64e3)])
    value = GenericValueClass(identifier=mid(4), value={"score": 10})
    action = ActionClass(identifier=mid(5), mode="serial", actions=[
        ElementaryAction(ActionVerb.RUN, ref("app", 1, 1), delay=0.5),
        ElementaryAction(ActionVerb.SET_VOLUME, ref("app", 2, 1),
                         parameters={"value": 60})])
    link = LinkClass(
        identifier=mid(6),
        trigger_conditions=[LinkCondition(ConditionKind.TRIGGER,
                                          ref("app", 1), "selected", "==",
                                          True)],
        additional_conditions=[LinkCondition(ConditionKind.ADDITIONAL,
                                             ref("app", 2), "presentation",
                                             "==", "running")],
        effect_ref=ref("app", 5), once=True)
    script = ScriptClass(identifier=mid(7),
                         source="new video app/1 as 1 on main\nrun app/1#1")
    composite = CompositeClass(
        identifier=mid(8), components=[ref("app", 1), ref("app", 2)],
        sockets=[Socket("pic", SocketKind.PRESENTABLE, ref("app", 1))],
        links=[ref("app", 6)],
        sync_spec={"kind": "atomic", "mode": "serial",
                   "first": "app/1", "second": "app/2"},
        layout={"app/1": {"position": [0, 0], "size": [320, 240]}})
    descriptor = DescriptorClass(
        identifier=mid(9), described=[ref("app", 8)],
        requirements=[ResourceRequirement("SIMG", storage_bytes=4096)],
        readme="needs image decoder", total_size=4096)
    return [content, referenced, mux, value, action, link, script,
            composite, descriptor]


class TestAsn1Roundtrip:
    @pytest.mark.parametrize("obj", sample_objects(),
                             ids=lambda o: type(o).__name__)
    def test_roundtrip(self, obj):
        assert codec.decode(codec.encode(obj)) == obj

    def test_container_roundtrip_carries_objects(self):
        objs = sample_objects()
        cont = ContainerClass(identifier=mid(100), objects=objs)
        back = codec.decode(codec.encode(cont))
        assert back.objects == objs

    def test_invalid_object_refused_at_encode(self):
        bad = ContentClass(identifier=mid(1), content_hook="SIMG")
        with pytest.raises(EncodingError):
            codec.encode(bad)

    def test_corruption_never_silently_accepted(self):
        """A flipped bit either fails decoding or yields a visibly
        different object — transport-level integrity (AAL5 CRC) guards
        the rest; the codec must never return the original object from
        corrupted bytes."""
        original = sample_objects()[0]
        clean = codec.encode(original)
        for pos in range(0, len(clean), max(1, len(clean) // 16)):
            data = bytearray(clean)
            data[pos] ^= 0xFF
            try:
                back = codec.decode(bytes(data))
            except (DecodingError, EncodingError):
                continue
            assert back != original

    def test_truncation_detected(self):
        data = codec.encode(sample_objects()[0])
        with pytest.raises(DecodingError):
            codec.decode(data[:-3])

    def test_outer_tag_matches_class(self):
        data = codec.encode(sample_objects()[3])  # GenericValueClass
        # application class tag = ClassId.CONTENT = 1
        assert data[0] & 0xC0 == 0x40  # application class
        assert data[0] & 0x1F == 1

    def test_plain_bytes_rejected(self):
        with pytest.raises(DecodingError):
            codec.decode(b"not ber at all")


class TestSgmlRoundtrip:
    @pytest.mark.parametrize("obj", sample_objects(),
                             ids=lambda o: type(o).__name__)
    def test_roundtrip(self, obj):
        assert codec.from_sgml(codec.to_sgml(obj)) == obj

    def test_sgml_escaping(self):
        obj = GenericValueClass(identifier=mid(1),
                                value='<tag attr="x & y">')
        assert codec.from_sgml(codec.to_sgml(obj)) == obj

    def test_sgml_binary_content(self):
        obj = ImageContentClass(identifier=mid(1), content_hook="SIMG",
                                data=bytes(range(256)))
        assert codec.from_sgml(codec.to_sgml(obj)).data == bytes(range(256))

    def test_not_sgml_rejected(self):
        with pytest.raises(DecodingError):
            codec.from_sgml("plain text")

    def test_equivalence_of_notations(self):
        """ASN.1 and SGML paths decode to identical objects."""
        for obj in sample_objects():
            via_ber = codec.decode(codec.encode(obj))
            via_sgml = codec.from_sgml(codec.to_sgml(obj))
            assert via_ber == via_sgml


class TestPropertyRoundtrip:
    @given(data=st.binary(max_size=512),
           name=st.text(min_size=1, max_size=20),
           pos=st.lists(st.integers(-10_000, 10_000), min_size=2, max_size=2))
    @settings(max_examples=40)
    def test_content_roundtrip_property(self, data, name, pos):
        obj = ImageContentClass(
            identifier=mid(1), content_hook="SIMG", data=data,
            presentation={"position": pos})
        obj.info.name = name
        assert codec.decode(codec.encode(obj)) == obj
        assert codec.from_sgml(codec.to_sgml(obj)) == obj
