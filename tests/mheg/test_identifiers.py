"""Tests for MHEG identifiers and references."""

import pytest
from hypothesis import given, strategies as st

from repro.mheg.identifiers import MhegIdentifier, ObjectReference, ref


class TestMhegIdentifier:
    def test_str_and_parse(self):
        ident = MhegIdentifier("course", 42)
        assert str(ident) == "course/42"
        assert MhegIdentifier.parse("course/42") == ident

    def test_application_with_slashes(self):
        ident = MhegIdentifier.parse("mirl/teleschool/7")
        assert ident.application == "mirl/teleschool" and ident.number == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            MhegIdentifier("", 1)
        with pytest.raises(ValueError):
            MhegIdentifier("app", -1)
        with pytest.raises(ValueError):
            MhegIdentifier.parse("no-number")

    def test_ordering(self):
        assert MhegIdentifier("a", 1) < MhegIdentifier("a", 2) < MhegIdentifier("b", 0)

    def test_hashable(self):
        assert len({MhegIdentifier("a", 1), MhegIdentifier("a", 1)}) == 1


class TestObjectReference:
    def test_model_reference(self):
        r = ref("app", 3)
        assert not r.is_runtime
        assert str(r) == "app/3"

    def test_runtime_reference(self):
        r = ref("app", 3, 2)
        assert r.is_runtime
        assert str(r) == "app/3#2"

    def test_parse_roundtrip(self):
        for text in ("app/3", "app/3#2", "a/b/9#1"):
            assert str(ObjectReference.parse(text)) == text

    def test_parse_bad_tag(self):
        with pytest.raises(ValueError):
            ObjectReference.parse("app/3#x")

    @given(st.text(alphabet="abc/", min_size=1).filter(
               lambda s: not s.endswith("/") and not s.startswith("/")),
           st.integers(0, 10**6), st.none() | st.integers(0, 100))
    def test_roundtrip_property(self, app, num, tag):
        r = ObjectReference(MhegIdentifier(app, num), tag)
        assert ObjectReference.parse(str(r)) == r
