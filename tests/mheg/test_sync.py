"""Tests for the synchronisation spec builders (Fig 2.6)."""

import pytest

from repro.mheg import sync
from repro.mheg.classes.behavior import ActionVerb, ElementaryAction
from repro.mheg.identifiers import ref
from repro.util.errors import AuthoringError

A, B, C = ref("app", 1), ref("app", 2), ref("app", 3)


class TestBuilders:
    def test_atomic_serial(self):
        spec = sync.atomic_serial(A, B)
        sync.validate_spec(spec)
        assert spec["mode"] == "serial"

    def test_atomic_parallel(self):
        spec = sync.atomic_parallel(A, B)
        sync.validate_spec(spec)
        assert spec["mode"] == "parallel"

    def test_elementary_offsets(self):
        spec = sync.elementary(A, 0.0, B, 2.5)
        sync.validate_spec(spec)
        assert spec["entries"][1]["time"] == 2.5

    def test_elementary_rejects_negative(self):
        with pytest.raises(AuthoringError):
            sync.elementary(A, -1.0, B, 0.0)

    def test_timeline_many_entries(self):
        spec = sync.timeline([(A, 0.0), (B, 1.0), (C, 2.0)])
        sync.validate_spec(spec)
        assert len(spec["entries"]) == 3

    def test_cyclic(self):
        spec = sync.cyclic(A, period=1.5, repetitions=4)
        sync.validate_spec(spec)
        with pytest.raises(AuthoringError):
            sync.cyclic(A, period=0)
        with pytest.raises(AuthoringError):
            sync.cyclic(A, period=1, repetitions=0)

    def test_chained(self):
        spec = sync.chained([A, B, C])
        sync.validate_spec(spec)
        with pytest.raises(AuthoringError):
            sync.chained([])


class TestValidateSpec:
    def test_unknown_kind(self):
        with pytest.raises(AuthoringError):
            sync.validate_spec({"kind": "quantum"})

    def test_atomic_bad_mode(self):
        with pytest.raises(AuthoringError):
            sync.validate_spec({"kind": "atomic", "mode": "diagonal",
                                "first": "a/1", "second": "a/2"})

    def test_elementary_empty(self):
        with pytest.raises(AuthoringError):
            sync.validate_spec({"kind": "elementary", "entries": []})


class TestLinkBuilders:
    def test_when_stops_run(self):
        link = sync.when_stops_run("app", 10, A, B)
        link.validate()
        cond = link.trigger_conditions[0]
        assert cond.source == A
        assert cond.value == "not-running"
        assert link.effect.actions[0].verb is ActionVerb.RUN
        assert link.effect.actions[0].target == B

    def test_when_selected_do(self):
        actions = [ElementaryAction(ActionVerb.STOP, A),
                   ElementaryAction(ActionVerb.RUN, B)]
        link = sync.when_selected_do("app", 11, C, actions, once=True)
        link.validate()
        assert link.once
        assert link.trigger_conditions[0].attribute == "selected"
        assert len(link.effect.actions) == 2
