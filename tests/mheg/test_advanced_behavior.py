"""Advanced MHEG behaviour: value-triggered links, multiple channels,
and an MHEG-native quiz built only from standard classes."""

import pytest

from repro.mheg import (
    ActionClass, ActionVerb, CompositeClass, ElementaryAction,
    GenericValueClass, ImageContentClass, LinkClass, MhegEngine,
    TextContentClass,
)
from repro.mheg.classes.behavior import ConditionKind, LinkCondition
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.mheg.runtime import RtState

APP = "adv"


def mid(n):
    return MhegIdentifier(APP, n)


def text(n, label=b"t", selectable=False):
    return TextContentClass(
        identifier=mid(n), content_hook="STXT", data=label,
        presentation={"selectable": selectable})


class TestValueTriggeredLinks:
    def test_link_fires_on_value_change(self):
        engine = MhegEngine()
        engine.store(GenericValueClass(identifier=mid(1), value=0))
        engine.store(text(2))
        counter = engine.new_runtime(ref(APP, 1))
        target = engine.new_runtime(ref(APP, 2))
        engine.store(LinkClass(
            identifier=mid(10),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 1), "value", "==", 3)],
            effect=ActionClass(identifier=mid(11), actions=[
                ElementaryAction(ActionVerb.RUN, ref(APP, 2))])))
        engine.arm_link(ref(APP, 10))
        for value in (1, 2):
            engine.apply(ElementaryAction(
                ActionVerb.SET_VALUE, counter.reference,
                parameters={"value": value}))
            assert target.state is RtState.INACTIVE
        engine.apply(ElementaryAction(ActionVerb.SET_VALUE,
                                      counter.reference,
                                      parameters={"value": 3}))
        assert target.state is RtState.RUNNING

    def test_ordering_comparisons_on_values(self):
        engine = MhegEngine()
        engine.store(GenericValueClass(identifier=mid(1), value=0))
        engine.store(text(2))
        counter = engine.new_runtime(ref(APP, 1))
        target = engine.new_runtime(ref(APP, 2))
        engine.store(LinkClass(
            identifier=mid(10),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 1), "value", ">=", 10)],
            effect=ActionClass(identifier=mid(11), actions=[
                ElementaryAction(ActionVerb.RUN, ref(APP, 2))])))
        engine.arm_link(ref(APP, 10))
        engine.apply(ElementaryAction(ActionVerb.SET_VALUE,
                                      counter.reference,
                                      parameters={"value": 12}))
        assert target.state is RtState.RUNNING


class TestMultiplexedStreamControl:
    """'Turn audio on and off in an MPEG system stream' (§4.4.1)."""

    def _mux_engine(self):
        from repro.mheg import MultiplexedContentClass
        from repro.mheg.classes.content import StreamDescription
        engine = MhegEngine()
        engine.store(MultiplexedContentClass(
            identifier=mid(1), content_hook="SMPG", data=b"av",
            streams=[StreamDescription(1, "video", 1.5e6),
                     StreamDescription(2, "audio", 64e3)]))
        return engine, engine.new_runtime(ref(APP, 1))

    def test_streams_enabled_by_default(self):
        engine, rt = self._mux_engine()
        assert rt.stream_enabled == {1: True, 2: True}

    def test_disable_and_reenable_audio(self):
        engine, rt = self._mux_engine()
        engine.apply(ElementaryAction(
            ActionVerb.SET_VOLUME, rt.reference,
            parameters={"stream_id": 2, "value": 0}))
        assert rt.stream_enabled == {1: True, 2: False}
        engine.apply(ElementaryAction(
            ActionVerb.SET_VOLUME, rt.reference,
            parameters={"stream_id": 2, "value": 80}))
        assert rt.stream_enabled[2] is True
        # overall volume untouched by per-stream control
        assert rt.volume is None

    def test_unknown_stream_rejected(self):
        from repro.util.errors import PresentationError
        engine, rt = self._mux_engine()
        with pytest.raises(PresentationError):
            engine.apply(ElementaryAction(
                ActionVerb.SET_VOLUME, rt.reference,
                parameters={"stream_id": 9, "value": 0}))


class TestMultipleChannels:
    def test_objects_present_on_their_channels(self):
        engine = MhegEngine()
        engine.add_channel("overlay", 320, 240)
        engine.store(text(1))
        engine.store(text(2))
        main_rt = engine.new_runtime(ref(APP, 1), channel="main")
        over_rt = engine.new_runtime(ref(APP, 2), channel="overlay")
        engine.run(main_rt)
        engine.run(over_rt)
        assert main_rt.ref_str in engine.channels["main"].presented
        assert over_rt.ref_str in engine.channels["overlay"].presented
        assert over_rt.ref_str not in engine.channels["main"].presented

    def test_composite_layout_reroutes_channel(self):
        engine = MhegEngine()
        engine.add_channel("pip", 160, 120)
        engine.store(text(1))
        engine.store(CompositeClass(
            identifier=mid(10), components=[ref(APP, 1)],
            layout={f"{APP}/1": {"channel": "pip", "position": [5, 5]}}))
        rt = engine.new_runtime(ref(APP, 10))
        child = engine.runtime(ref(APP, 1, 1))
        assert child.channel == "pip"
        engine.run(rt)
        assert child.ref_str in engine.channels["pip"].presented


class TestMhegNativeQuiz:
    """The Fig 4.3b question loop built purely from MHEG objects: two
    answer buttons, a score value, right/wrong feedback texts."""

    def build(self, engine):
        engine.store(text(1, b"What is the ATM cell size?"))
        engine.store(text(2, b"53 bytes", selectable=True))   # correct
        engine.store(text(3, b"64 bytes", selectable=True))   # wrong
        engine.store(text(4, b"Right!"))
        engine.store(text(5, b"Try again"))
        engine.store(GenericValueClass(identifier=mid(6), value=0))
        # correct answer: show feedback and bump the score
        engine.store(LinkClass(
            identifier=mid(10),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 2), "selected", "==",
                True)],
            effect=ActionClass(identifier=mid(11), actions=[
                ElementaryAction(ActionVerb.RUN, ref(APP, 4)),
                ElementaryAction(ActionVerb.SET_VALUE, ref(APP, 6),
                                 parameters={"value": 1})])))
        # wrong answer: show retry text
        engine.store(LinkClass(
            identifier=mid(12),
            trigger_conditions=[LinkCondition(
                ConditionKind.TRIGGER, ref(APP, 3), "selected", "==",
                True)],
            effect=ActionClass(identifier=mid(13), actions=[
                ElementaryAction(ActionVerb.RUN, ref(APP, 5))])))
        quiz = CompositeClass(
            identifier=mid(20),
            components=[ref(APP, i) for i in (1, 2, 3, 4, 5, 6)],
            links=[ref(APP, 10), ref(APP, 12)],
            sync_spec={"kind": "elementary", "entries": [
                {"target": f"{APP}/1", "time": 0.0},
                {"target": f"{APP}/2", "time": 0.0},
                {"target": f"{APP}/3", "time": 0.0}]})
        engine.store(quiz)
        return engine.new_runtime(ref(APP, 20))

    def test_wrong_then_right(self):
        engine = MhegEngine()
        rt = self.build(engine)
        engine.run(rt)
        wrong = engine.runtime(ref(APP, 3, 1))
        right = engine.runtime(ref(APP, 2, 1))
        score = engine.runtime(ref(APP, 6, 1))
        engine.select(wrong)
        assert engine.runtime(ref(APP, 5, 1)).state is RtState.RUNNING
        assert score.value == 0
        engine.select(right)
        assert engine.runtime(ref(APP, 4, 1)).state is RtState.RUNNING
        assert score.value == 1

    def test_quiz_survives_interchange(self):
        """The whole quiz round-trips as one container and still works."""
        from repro.mheg import ContainerClass, MhegCodec
        build_engine = MhegEngine()
        self.build(build_engine)
        # effects are inline in the links, so only the stored objects
        # (contents, value, links, composite) enter the container
        objects = [build_engine.get(ref(APP, i))
                   for i in (1, 2, 3, 4, 5, 6, 10, 12, 20)]
        container = ContainerClass(identifier=mid(99), objects=objects)
        blob = MhegCodec().encode(container)

        engine = MhegEngine()
        engine.receive(blob)
        rt = engine.new_runtime(ref(APP, 20))
        engine.run(rt)
        engine.select(engine.runtime(ref(APP, 2, 1)))
        assert engine.runtime(ref(APP, 6, 1)).value == 1
