"""Differential fidelity harness: batched must EQUAL cell, byte for byte.

The cell-train fast path replaces ~6 scheduled events per cell with
one callback per pipeline stage.  Its correctness claim is not "close
enough" — it is exact: for every named scenario the canonical snapshot
(every per-VC delay, link/switch/host counter, gauge extreme, SLO
result, conservation audit, flight-recorder ring — everything except
the raw event count and wall-clock noise, see
:mod:`repro.obs.equivalence`) must be **byte-identical** between
``fidelity="cell"`` and ``fidelity="batched"``.  The same pair is
pushed through :mod:`repro.obs.diff`, whose
``deterministic_delta_count`` must be zero — so when the contract ever
breaks, the ranked attribution table names the layer that diverged.

Hybrid fidelity carries a weaker, explicitly-toleranced contract:
background VCs become rate × duration flow segments, so cell-exact
equality is out of scope — but the SLO verdict must match the batched
run and ledger grand totals must agree within 1%.
"""

import pytest

from repro.core.scenarios import build
from repro.obs.equivalence import (
    canonical_form,
    fidelity_diff,
    ledger_totals,
    snapshots_equivalent,
)

SCENARIOS = ("quickstart", "classroom", "faulty-classroom")

#: scenario snapshots are deterministic, so one run per (scenario,
#: fidelity, accounting) serves every assertion in the module
_cache = {}


def _snapshot(name, fidelity, **kwargs):
    key = (name, fidelity, tuple(sorted(kwargs.items())))
    if key not in _cache:
        run = build(name, fidelity=fidelity, **kwargs)
        run.run_to_horizon()
        _cache[key] = run.mits.snapshot()
    return _cache[key]


@pytest.mark.parametrize("name", SCENARIOS)
class TestBatchedIsExact:
    def test_canonical_snapshot_is_byte_identical(self, name):
        cell = _snapshot(name, "cell")
        batched = _snapshot(name, "batched")
        assert snapshots_equivalent(cell, batched), (
            f"{name}: batched fidelity diverged from per-cell; run "
            f"scripts/diff_fidelity.py {name} for the attribution table"
        )

    def test_differential_diff_counts_zero_deterministic_deltas(self, name):
        payload = fidelity_diff(_snapshot(name, "cell"),
                                _snapshot(name, "batched"), name=name)
        assert payload["deterministic_delta_count"] == 0, \
            payload["attribution"][:5]

    def test_event_count_shrinks_but_work_is_conserved(self, name):
        """The point of the fast path: per-cell-equivalent events are
        conserved (charge_cells bills each batch at legacy weight), so
        the counts agree within the handful of continuation/deferral
        events batching adds — never by a whole frame's worth."""
        cell = _snapshot(name, "cell")["events_run"]
        batched = _snapshot(name, "batched")["events_run"]
        assert abs(batched - cell) < 500
        assert abs(batched - cell) / cell < 0.02


@pytest.mark.parametrize("name", SCENARIOS)
class TestHybridTolerance:
    def test_slo_verdict_matches_batched(self, name):
        batched = _snapshot(name, "batched", accounting=True)
        hybrid = _snapshot(name, "hybrid", accounting=True)
        assert hybrid["slo"]["verdict"] == batched["slo"]["verdict"]

    def test_ledger_totals_within_one_percent(self, name):
        batched = ledger_totals(_snapshot(name, "batched",
                                          accounting=True))
        hybrid = ledger_totals(_snapshot(name, "hybrid",
                                         accounting=True))
        assert batched, "accounting was enabled; totals must exist"
        assert set(hybrid) == set(batched)
        for key, want in batched.items():
            got = hybrid[key]
            assert abs(got - want) <= max(abs(want), 1.0) * 0.01, \
                f"{name}: ledger {key} {got} vs batched {want}"

    def test_conservation_audit_stays_clean(self, name):
        audit = _snapshot(name, "hybrid", accounting=True)["audit"]
        assert audit["violations"] == []


class TestHybridEngagesFlowLanes:
    def test_background_vcs_run_at_flow_level(self):
        run = build("classroom", fidelity="hybrid")
        run.run_to_horizon()
        vcs = run.mits.network.vcs.values()
        lanes = [vc for vc in vcs if vc.lane is not None]
        streams = [vc for vc in vcs if vc.lane is None]
        # the RPC duplex pairs collapsed; the video streams did not
        assert lanes and streams
        assert sum(vc.stats.pdus_delivered for vc in lanes) > 0
