"""Sampling policy layer: head-based trace sampling, reservoirs,
telemetry decimation/coalescing, and top-K accounting
(repro.obs.sampling + the collectors that honour it)."""

import pytest

from repro.obs.accounting import Ledger, render_top
from repro.obs.events import FlightRecorder
from repro.obs.sampling import (
    DEFAULT_POLICY, Reservoir, SamplingPolicy, scaled_policy,
    trace_sampled,
)
from repro.obs.timeseries import Series
from repro.obs.tracing import Tracer


class TestTraceSampled:
    def test_pure_function_of_id_rate_seed(self):
        for tid in range(100):
            first = trace_sampled(tid, 0.3, seed=7)
            assert all(trace_sampled(tid, 0.3, seed=7) == first
                       for _ in range(5))

    def test_rate_extremes(self):
        assert all(trace_sampled(t, 1.0) for t in range(50))
        assert not any(trace_sampled(t, 0.0) for t in range(50))

    def test_rate_is_roughly_honoured(self):
        kept = sum(trace_sampled(t, 0.2, seed=3) for t in range(5000))
        assert 0.15 < kept / 5000 < 0.25

    def test_seed_changes_the_sample(self):
        a = [t for t in range(500) if trace_sampled(t, 0.5, seed=1)]
        b = [t for t in range(500) if trace_sampled(t, 0.5, seed=2)]
        assert a != b


class TestReservoir:
    def test_below_capacity_keeps_everything(self):
        r = Reservoir(8)
        for i in range(5):
            assert r.offer(i)
        assert len(r) == 5
        assert r.evicted == 0
        assert r.items() == [0, 1, 2, 3, 4]

    def test_bounded_and_deterministic_over_a_long_stream(self):
        a, b = Reservoir(16, seed=9), Reservoir(16, seed=9)
        for i in range(10_000):
            a.offer(i)
            b.offer(i)
        assert len(a) == 16
        assert a.offered == 10_000
        assert a.evicted == 10_000 - 16
        assert a.items() == b.items()

    def test_uniformity_covers_the_early_stream(self):
        # Algorithm R must not degenerate to newest-wins: early items
        # survive with probability capacity/offered
        r = Reservoir(100, seed=4)
        for i in range(10_000):
            r.offer(i)
        assert any(x < 2000 for x in r.items())

    def test_clear_resets(self):
        r = Reservoir(2)
        r.offer(1)
        r.offer(2)
        r.offer(3)
        r.clear()
        assert len(r) == 0 and r.offered == 0 and r.evicted == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Reservoir(0)


class TestSamplingPolicy:
    def test_default_policy_is_default(self):
        assert DEFAULT_POLICY.is_default
        assert SamplingPolicy().is_default

    def test_any_shed_knob_leaves_default(self):
        assert not SamplingPolicy(trace_sample_rate=0.5).is_default
        assert not SamplingPolicy(span_reservoir=8).is_default
        assert not SamplingPolicy(event_reservoir=8).is_default
        assert not SamplingPolicy(telemetry_stride=2).is_default
        assert not SamplingPolicy(telemetry_coalesce=True).is_default
        assert not SamplingPolicy(ledger_top_k=4).is_default

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(trace_sample_rate=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy(telemetry_stride=0)
        with pytest.raises(ValueError):
            SamplingPolicy(span_reservoir=0)

    def test_scaled_policy_preset(self):
        p = scaled_policy(0.1, reservoir=256, top_k=16, seed=5)
        assert p.trace_sample_rate == 0.1
        assert p.span_reservoir == 256
        assert p.event_reservoir == 256
        assert p.ledger_top_k == 16
        assert p.telemetry_coalesce is True
        assert p.seed == 5
        assert not p.is_default

    def test_round_trips_through_dict(self):
        p = scaled_policy(0.25)
        assert SamplingPolicy(**p.to_dict()) == p


class TestTracerSampling:
    def _tracer(self, policy):
        clock = [0.0]
        t = Tracer(clock=lambda: clock[0], enabled=True)
        t.apply_policy(policy)
        return t, clock

    def test_head_sampling_drops_whole_traces(self):
        t, _ = self._tracer(SamplingPolicy(trace_sample_rate=0.5, seed=3))
        for _ in range(200):
            with t.span("root"):
                with t.span("child"):
                    pass
        kept_traces = {s.trace_id for s in t.spans}
        # every kept trace is complete: both its root and its child
        for tid in kept_traces:
            names = sorted(s.name for s in t.spans
                           if s.trace_id == tid)
            assert names == ["child", "root"]
        assert t.sampled_out > 0
        assert t.sampled_out + len(t.spans) == 400

    def test_same_seed_same_decisions(self):
        outs = []
        for _ in range(2):
            t, _ = self._tracer(
                SamplingPolicy(trace_sample_rate=0.3, seed=11))
            for _ in range(100):
                with t.span("op"):
                    pass
            outs.append(sorted(s.trace_id for s in t.spans))
        assert outs[0] == outs[1]

    def test_span_reservoir_bounds_memory(self):
        t, _ = self._tracer(SamplingPolicy(span_reservoir=32))
        for _ in range(1000):
            with t.span("op"):
                pass
        assert len(t.spans) == 32
        assert t.dropped == 1000 - 32
        assert t.report()["sampled_out"] == 0


class TestRecorderOverflow:
    def test_evicted_events_spill_into_the_reservoir(self):
        clock = [0.0]
        rec = FlightRecorder(clock=lambda: clock[0], capacity=16)
        rec.apply_policy(SamplingPolicy(event_reservoir=8))
        for i in range(100):
            clock[0] = float(i)
            rec.record("c", f"k{i}")
        assert len(rec.events) == 16
        snap = rec.snapshot()
        assert snap["overflow"]["capacity"] == 8
        assert 0 < snap["overflow"]["kept"] <= 8
        # overflow holds *evicted* (older) events, in time order
        times = [e.time for e in rec.overflow]
        assert times == sorted(times)
        assert all(t < rec.events[0].time for t in times)

    def test_default_snapshot_shape_has_no_overflow_block(self):
        rec = FlightRecorder(clock=lambda: 0.0, capacity=4)
        rec.record("c", "k")
        assert "overflow" not in rec.snapshot()


class TestTelemetryShedding:
    def test_series_coalesces_identical_samples(self):
        s = Series("c", "n", {}, "gauge", 64, coalesce=True)
        s.record(0.0, 5.0)
        s.record(1.0, 5.0)
        s.record(2.0, 5.0)
        s.record(3.0, 7.0)
        # the standing point's timestamp slid forward to t=2
        assert list(s.times) == [2.0, 3.0]
        assert list(s.values) == [5.0, 7.0]
        assert s.coalesced == 2
        assert s.to_dict()["coalesced"] == 2

    def test_non_coalescing_series_keeps_every_point(self):
        s = Series("c", "n", {}, "gauge", 64)
        for i in range(4):
            s.record(float(i), 5.0)
        assert len(s) == 4
        assert "coalesced" not in s.to_dict()


class TestTopKLedger:
    def _charge(self, ledger, key, cells):
        ledger.account("vc", key).sent(cells=cells)

    def test_heavy_hitters_survive_eviction(self):
        ledger = Ledger(top_k=4)
        for i in range(4):
            self._charge(ledger, f"heavy{i}", 1000 * (i + 1))
        for i in range(50):
            self._charge(ledger, f"light{i}", 1)
        accounts = ledger.accounts("vc")
        assert len(accounts) == 4
        # a still-held heavy hitter is exact: weight >> error
        heavies = [a for a in accounts if a.key.startswith("heavy")]
        assert heavies and all(a.weight - a.error >= 1000
                               for a in heavies)
        assert ledger.evictions["vc"] > 0

    def test_newcomer_inherits_victim_weight_as_error(self):
        ledger = Ledger(top_k=2)
        self._charge(ledger, "a", 10)
        self._charge(ledger, "b", 20)
        self._charge(ledger, "c", 1)  # evicts a (weight 10)
        c = ledger.account("vc", "c")
        assert c.error == 10.0
        assert c.weight == 11.0  # inherited 10 + its own 1

    def test_snapshot_marks_approx_rows_and_render_flags_them(self):
        ledger = Ledger(top_k=2)
        self._charge(ledger, "a", 10)
        self._charge(ledger, "b", 20)
        self._charge(ledger, "c", 1)
        snap = ledger.snapshot(sim_time=1.0)
        assert snap["top_k"] == 2
        rows = {r["key"]: r for r in snap["kinds"]["vc"]}
        assert rows["c"]["approx"] is True
        assert rows["b"]["approx"] is False
        text = render_top(snap, title="x")
        assert "~c" in text
        assert "space-saving sketch" in text

    def test_exact_ledger_snapshot_shape_unchanged(self):
        ledger = Ledger()
        self._charge(ledger, "a", 10)
        snap = ledger.snapshot(sim_time=1.0)
        assert "top_k" not in snap
        assert "weight" not in snap["kinds"]["vc"][0]

    def test_reconcile_skipped_in_sketch_mode(self):
        ledger = Ledger(top_k=2)
        self._charge(ledger, "a", 10)
        assert ledger.reconcile(None) == []
