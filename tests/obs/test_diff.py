"""Tests for differential run comparison (repro.obs.diff).

The two acceptance properties: same-seed runs diff to ZERO
deterministic deltas (the CI determinism smoke job hangs off that),
and a genuine regression produces a ranked attribution table naming
the span kinds / callsites / components that moved.
"""

import copy
import json
import os

import pytest

from repro.core.scenarios import build
from repro.obs.__main__ import main
from repro.obs.diff import (
    BENCH_DETERMINISTIC, RunArchive, diff_runs, load_run,
    render_attribution_table, render_diff_report, write_diff,
)
from repro.obs.export import dump_observability

REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)


@pytest.fixture(scope="module")
def same_seed_pair(tmp_path_factory):
    """Two independent quickstart runs, same seed, archived apart."""
    paths = []
    for label in ("a", "b"):
        out = str(tmp_path_factory.mktemp(f"run_{label}"))
        run = build("quickstart", accounting=True)
        run.run_to_horizon()
        dump_observability(run.mits, "q", out)
        paths.append(os.path.join(out, "metrics_q.json"))
    return paths


class TestSameSeedIsEquivalent:
    def test_zero_deterministic_deltas(self, same_seed_pair):
        a, b = (load_run(p) for p in same_seed_pair)
        payload = diff_runs(a, b)
        assert payload["deterministic_delta_count"] == 0
        assert payload["metrics"] == {}
        assert payload["slo"]["transitions"] == []
        assert not payload["slo"]["verdict_changed"]
        assert all(abs(r["delta_seconds"]) < 1e-9
                   for r in payload["attribution"])

    def test_cli_exits_zero(self, same_seed_pair, capsys):
        a, b = same_seed_pair
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "deterministic deltas: 0" in out


class TestRegressionAttribution:
    def _mutated(self, same_seed_pair, tmp_path):
        """An 'after' archive with a deliberate regression baked in:
        more retransmits and a longer streaming span."""
        src = same_seed_pair[0]
        with open(src) as fh:
            payload = json.load(fh)
        for rows in payload["metrics"]["connection"].values():
            for row in rows:
                if row.get("type") == "counter":
                    row["value"] = row.get("value", 0) + 5
        mutated = tmp_path / "metrics_mutated.json"
        mutated.write_text(json.dumps(payload))
        archive = load_run(str(mutated))
        # borrow the real span set and stretch one streaming span
        archive.spans = copy.deepcopy(load_run(src).spans)
        for span in archive.spans:
            if span["name"].startswith("streaming"):
                span["end"] += 1.0
                span["duration"] = span["end"] - span["start"]
                break
        return archive

    def test_deltas_are_named_and_counted(self, same_seed_pair,
                                          tmp_path):
        before = load_run(same_seed_pair[0])
        after = self._mutated(same_seed_pair, tmp_path)
        payload = diff_runs(before, after)
        assert payload["deterministic_delta_count"] > 0
        moved_keys = set(payload["metrics"])
        assert any(k.startswith("connection.") for k in moved_keys)
        top = payload["attribution"][0]
        assert top["source"] in ("span-kind", "critical-path")
        assert abs(top["delta_seconds"]) == pytest.approx(1.0)
        rendered = render_attribution_table(payload)
        assert "ranked attribution" in rendered
        assert "streaming" in rendered

    def test_full_report_renders(self, same_seed_pair, tmp_path):
        before = load_run(same_seed_pair[0])
        after = self._mutated(same_seed_pair, tmp_path)
        report = render_diff_report(diff_runs(before, after))
        assert "top instrument movements" in report
        assert "deterministic deltas:" in report


class TestBenchArchives:
    def test_bench_baseline_loads(self):
        archive = load_run(os.path.join(REPO_ROOT,
                                        "BENCH_quickstart.json"))
        assert archive.bench
        assert set(BENCH_DETERMINISTIC) <= set(archive.bench)
        assert archive.profile

    def test_perturbed_bench_vector_is_deterministic_delta(
            self, tmp_path):
        src = os.path.join(REPO_ROOT, "BENCH_quickstart.json")
        with open(src) as fh:
            payload = json.load(fh)
        payload["metrics"]["events_run"] += 1000
        perturbed = tmp_path / "BENCH_quickstart.json"
        perturbed.write_text(json.dumps(payload))
        diff = diff_runs(load_run(src), load_run(str(perturbed)))
        assert diff["deterministic_delta_count"] >= 1
        moved = {r["metric"] for r in diff["bench"]
                 if abs(r["delta"]) > 1e-9}
        assert moved == {"events_run"}

    def test_wall_metrics_never_count_as_deterministic(self, tmp_path):
        src = os.path.join(REPO_ROOT, "BENCH_quickstart.json")
        with open(src) as fh:
            payload = json.load(fh)
        payload["metrics"]["events_per_sec"] = 1.0
        payload["metrics"]["wall_seconds"] = 999.0
        perturbed = tmp_path / "BENCH_quickstart.json"
        perturbed.write_text(json.dumps(payload))
        diff = diff_runs(load_run(src), load_run(str(perturbed)))
        assert diff["deterministic_delta_count"] == 0


class TestDiffArtifact:
    def test_write_diff_names_the_file(self, same_seed_pair, tmp_path):
        a, b = (load_run(p) for p in same_seed_pair)
        path = write_diff(diff_runs(a, b), str(tmp_path), "demo")
        assert os.path.basename(path) == "diff_demo.json"
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["deterministic_delta_count"] == 0

    def test_cli_json_flag_and_exit_code(self, same_seed_pair,
                                         tmp_path, capsys):
        src = same_seed_pair[0]
        with open(src) as fh:
            payload = json.load(fh)
        rows = payload["metrics"]["simulator"]["events_run"]
        rows[0]["value"] += 17
        mutated = tmp_path / "metrics_m.json"
        mutated.write_text(json.dumps(payload))
        out_json = tmp_path / "d.json"
        assert main(["diff", src, str(mutated),
                     "--json", str(out_json)]) == 1
        # the artifact name is canonicalised to diff_<stem>.json
        assert (tmp_path / "diff_d.json").exists()
        report = capsys.readouterr().out
        assert "simulator.events_run" in report
