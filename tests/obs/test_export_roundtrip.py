"""Sidecar round-trip: dump a run, re-render from the archived JSON,
and assert parity with the live render (repro.obs.export)."""

import json
import os

import pytest

from repro.core.scenarios import build
from repro.obs.accounting import load_accounting_file, render_top
from repro.obs.dashboard import load_timeseries_file, render_dashboard
from repro.obs.export import dump_observability
from repro.obs.report import (
    load_metrics_file, load_trace_file, render_metrics_summary,
    render_slo_table, render_traces,
)
from repro.obs.slo import SloMonitor


@pytest.fixture(scope="module")
def dumped(tmp_path_factory):
    """One quickstart run with accounting on, dumped to sidecars."""
    out = str(tmp_path_factory.mktemp("sidecars"))
    run = build("quickstart", accounting=True)
    run.run_to_horizon()
    written = dump_observability(run.mits, "rt", out)
    return run.mits, out, written


class TestSidecarSet:
    def test_all_four_sidecars_written(self, dumped):
        _, out, written = dumped
        names = sorted(os.path.basename(p) for p in written)
        assert names == ["accounting_rt.json", "metrics_rt.json",
                         "timeseries_rt.json", "trace_rt.jsonl"]

    def test_metrics_sidecar_embeds_a_clean_audit(self, dumped):
        _, out, _ = dumped
        meta, _ = load_metrics_file(os.path.join(out, "metrics_rt.json"))
        assert meta["audit"]["ok"] is True
        assert meta["audit"]["checks"] > 0
        assert meta["watchdog"]["alerts"] == []
        assert meta["slo"]["watchdog_alerts"] == 0


class TestReportParity:
    def test_metrics_summary_matches_live(self, dumped):
        mits, out, _ = dumped
        _, archived = load_metrics_file(os.path.join(out, "metrics_rt.json"))
        live = mits.sim.metrics.report()
        assert render_metrics_summary(archived) \
            == render_metrics_summary(live)

    def test_slo_table_matches_live(self, dumped):
        mits, out, _ = dumped
        _, archived = load_metrics_file(os.path.join(out, "metrics_rt.json"))
        monitor = SloMonitor()
        assert render_slo_table(monitor.evaluate(archived)) \
            == render_slo_table(monitor.evaluate(mits.sim.metrics.report()))

    def test_trace_render_matches_live(self, dumped):
        mits, out, _ = dumped
        spans, events = load_trace_file(os.path.join(out, "trace_rt.jsonl"))
        # the sidecar is written sort_keys=True; normalise the live
        # dicts the same way before comparing the renders
        canon = lambda rows: json.loads(  # noqa: E731
            json.dumps(rows, sort_keys=True))
        live_spans = canon([s.to_dict() for s in mits.sim.tracer.spans])
        live_events = canon([e.to_dict() for e in mits.sim.recorder.events])
        assert render_traces(spans, events, top=5) \
            == render_traces(live_spans, live_events, top=5)


class TestDashboardParity:
    def test_dashboard_matches_live(self, dumped):
        mits, out, _ = dumped
        payload = load_timeseries_file(
            os.path.join(out, "timeseries_rt.json"))
        archived = render_dashboard(payload, width=40, top=5, title="x")
        live = render_dashboard(mits.sampler, width=40, top=5, title="x")
        assert archived == live


class TestTopParity:
    def test_top_matches_live(self, dumped):
        mits, out, _ = dumped
        payload = load_accounting_file(
            os.path.join(out, "accounting_rt.json"))
        sim = mits.sim
        live = sim.ledger.snapshot(sim_time=sim.now)
        for sort in ("bytes", "drops", "residency"):
            assert render_top(payload, sort=sort, title="x") \
                == render_top(live, sort=sort, title="x")

    def test_accounting_reconciles_with_registry(self, dumped):
        mits, _, _ = dumped
        assert mits.sim.ledger.reconcile(mits.sim.metrics) == []

    def test_accounting_sidecar_is_sorted_json(self, dumped):
        _, out, _ = dumped
        path = os.path.join(out, "accounting_rt.json")
        data = json.loads(open(path).read())
        assert data["enabled"] is True
        assert set(data["kinds"]) >= {"vc", "site", "stream", "link"}


class TestOverheadRoundTrip:
    """The wall-clock overhead block survives the metrics sidecar and
    stays OUT of the deterministic obs stream."""

    def test_overhead_block_round_trips_in_metrics_sidecar(self, dumped):
        mits, out, _ = dumped
        meta, _ = load_metrics_file(os.path.join(out, "metrics_rt.json"))
        assert "overhead" in meta
        live = mits.meter.report()
        assert set(meta["overhead"]) == set(live)
        assert meta["overhead"]["obs_overhead_pct"] >= 0.0
        # components accrued before the dump are all accounted for
        assert set(meta["overhead"]["components"]) \
            <= set(live["components"])

    def test_default_run_has_no_overflow_key(self, dumped):
        """No policy ⇒ the telemetry block keeps its historical shape."""
        _, out, _ = dumped
        meta, _ = load_metrics_file(os.path.join(out, "metrics_rt.json"))
        assert "flight_overflow_kept" not in meta["telemetry"]


class TestOverflowRoundTrip:
    """Ring-evicted events salvaged by the overflow reservoir must
    survive BOTH archive paths: the monolithic sidecars and the
    streamed obs JSONL."""

    @pytest.fixture(scope="class")
    def overflowed(self, tmp_path_factory):
        from repro.obs.sampling import SamplingPolicy

        out = str(tmp_path_factory.mktemp("overflow"))
        stream = os.path.join(out, "obs_ov.jsonl")
        run = build("quickstart",
                    sampling=SamplingPolicy(event_reservoir=4, seed=3),
                    stream=stream)
        run.run_to_horizon()
        mits = run.mits
        # force ring evictions: the reservoir only salvages once the
        # flight ring is full
        recorder = mits.sim.recorder
        capacity = recorder._events.maxlen
        for i in range(capacity + 50):
            recorder.record("test", "filler", seq=i)
        assert recorder.dropped > 0
        assert len(recorder._overflow) > 0
        written = dump_observability(mits, "ov", out)
        return mits, out, stream, written

    def test_metrics_sidecar_reports_salvaged_count(self, overflowed):
        mits, out, _, _ = overflowed
        meta, _ = load_metrics_file(os.path.join(out, "metrics_ov.json"))
        health = meta["telemetry"]
        assert health["flight_overflow_kept"] \
            == len(mits.sim.recorder._overflow)
        assert health["flight_overflow_kept"] > 0
        assert health["flight_dropped"] == mits.sim.recorder.dropped

    def test_streamed_fin_matches_metrics_sidecar(self, overflowed):
        from repro.obs.sink import load_obs_sidecar

        _, out, stream, _ = overflowed
        meta, _ = load_metrics_file(os.path.join(out, "metrics_ov.json"))
        streamed = load_obs_sidecar(stream)
        assert streamed["meta"]["telemetry"] == meta["telemetry"]
        # the stream itself must stay wall-clock-free
        assert '"overhead"' not in open(stream).read()

    def test_render_parity_shows_the_salvage_line(self, overflowed):
        from repro.obs.export import telemetry_health
        from repro.obs.report import render_telemetry_health

        mits, out, _, _ = overflowed
        meta, _ = load_metrics_file(os.path.join(out, "metrics_ov.json"))
        archived = render_telemetry_health(meta["telemetry"])
        assert archived == render_telemetry_health(telemetry_health(mits))
        assert "overflow reservoir" in archived
        assert "salvaged" in archived

    def test_trace_sidecar_carries_the_salvaged_events(self, overflowed):
        mits, out, _, _ = overflowed
        spans, events = load_trace_file(os.path.join(out, "trace_ov.jsonl"))
        recorder = mits.sim.recorder
        assert len(events) \
            == len(recorder._overflow) + len(recorder.events)
        # reservoir events are the oldest: written first, so a reader
        # sees (salvaged, then live ring) in record order
        salvaged = events[:len(recorder._overflow)]
        canon = lambda rows: json.loads(  # noqa: E731
            json.dumps(rows, sort_keys=True))
        assert salvaged \
            == canon([e.to_dict() for e in recorder.overflow])
