"""Tests for the sparkline dashboard and its CLI subcommand."""

import json

from repro.obs.__main__ import main
from repro.obs.dashboard import (
    DEFAULT_PANELS, Panel, load_timeseries_file, render_dashboard,
    render_panel, render_profile, sparkline,
)
from repro.obs.timeseries import Series


def make_series(component="link", name="queue_occupancy",
                labels=None, kind="gauge", values=(0, 2, 5, 9, 3)):
    series = Series(component, name, labels or {"link": "sw0->user1"},
                    kind, capacity=64)
    for i, v in enumerate(values):
        series.record(float(i), float(v))
    return series


def write_timeseries(path, evictions=0):
    payload = {
        "name": "demo",
        "enabled": True,
        "interval": 0.25,
        "capacity": 64,
        "samples": 5,
        "evictions": evictions,
        "series": [
            make_series().to_dict(),
            make_series("simulator", "queue_depth", labels={},
                        values=(1, 4, 2, 0, 0)).to_dict(),
            make_series("simulator", "events_run", labels={},
                        kind="counter", values=(0, 100, 300, 600, 900)
                        ).to_dict(),
        ],
    }
    path.write_text(json.dumps(payload))
    return path


class TestSparkline:
    def test_empty_series_renders_dots(self):
        assert sparkline([], width=8) == "." * 8

    def test_all_zero_series_renders_blank(self):
        assert sparkline([0, 0, 0], width=6) == " " * 6

    def test_flat_nonzero_series_renders_plateau(self):
        out = sparkline([5, 5, 5], width=6)
        assert len(out) == 6 and len(set(out)) == 1 and out[0] != " "

    def test_ramp_is_monotone(self):
        out = sparkline(list(range(10)), width=10)
        ramp = " .:-=+*#%@"
        indices = [ramp.index(c) for c in out]
        assert indices == sorted(indices)
        assert indices[0] == 0 and indices[-1] == len(ramp) - 1

    def test_long_series_decimated_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40


class TestPanels:
    def test_panel_renders_header_stats_and_bar(self):
        panel = Panel("link queue occupancy", "link", "queue_occupancy",
                      unit="cells")
        out = render_panel(panel, [make_series()])
        assert "link queue occupancy" in out
        assert "link.queue_occupancy" in out
        assert "max 9" in out
        assert "|" in out

    def test_panel_without_data_is_omitted(self):
        panel = Panel("player buffer", "player", "buffer_frames")
        assert render_panel(panel, [make_series()]) is None

    def test_multiple_instruments_are_merged(self):
        a = make_series(labels={"link": "a"}, values=(1, 1, 1))
        b = make_series(labels={"link": "b"}, values=(2, 2, 2))
        panel = Panel("queues", "link", "queue_occupancy")
        out = render_panel(panel, [a, b])
        assert "2 series" in out
        assert "max 3" in out  # summed at aligned timestamps

    def test_counter_panel_uses_rates(self):
        series = make_series("simulator", "events_run", labels={},
                             kind="counter", values=(0, 100, 300, 600))
        panel = Panel("event rate", "simulator", "events_run",
                      channel="rates", unit="events/s")
        out = render_panel(panel, [series])
        assert "rates" in out
        assert "max 300" in out  # (600-300)/1s


class TestDashboard:
    def test_renders_from_live_series(self):
        out = render_dashboard([make_series()])
        assert "== dashboard ==" in out
        assert "link queue occupancy" in out

    def test_renders_from_archived_payload(self, tmp_path):
        path = write_timeseries(tmp_path / "timeseries_demo.json")
        payload = load_timeseries_file(str(path))
        out = render_dashboard(payload, title="demo")
        assert "demo" in out
        assert "link queue occupancy" in out
        assert "simulator queue depth" in out
        assert "event rate" in out
        assert "5 samples" in out

    def test_eviction_warning_is_surfaced(self, tmp_path):
        path = write_timeseries(tmp_path / "timeseries_demo.json",
                                evictions=7)
        out = render_dashboard(load_timeseries_file(str(path)))
        assert "7 ring evictions" in out
        assert "! 7 samples evicted" in out

    def test_no_matching_series_message(self):
        out = render_dashboard([make_series("nobody", "cares")])
        assert "no series match any panel" in out

    def test_default_panels_cover_the_issue_list(self):
        covered = {(p.component, p.name) for p in DEFAULT_PANELS}
        for required in (("link", "queue_occupancy"),
                         ("connection", "window_occupancy"),
                         ("player", "buffer_frames"),
                         ("simulator", "queue_depth"),
                         ("simulator", "events_run")):
            assert required in covered


class TestProfilePane:
    def test_disabled_profile_message(self):
        assert "profiler disabled" in render_profile({"enabled": False})

    def test_hotspot_table(self):
        profile = {
            "enabled": True, "events": 42, "wall_seconds": 0.5,
            "sim_seconds": 50.0, "sim_to_wall": 100.0,
            "hotspots": [
                {"callsite": "Host.receive_cell", "calls": 30,
                 "cum_seconds": 0.3, "self_seconds": 0.25,
                 "mean_us": 10000.0},
            ],
        }
        out = render_profile(profile)
        assert "42 events" in out
        assert "(100x real time)" in out
        assert "Host.receive_cell" in out


class TestDashboardCommand:
    def test_archived_mode(self, tmp_path, capsys):
        path = write_timeseries(tmp_path / "timeseries_demo.json")
        assert main(["dashboard", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== dashboard: demo ==" in out
        assert "link queue occupancy" in out

    def test_snapshot_wrapper_accepted(self, tmp_path, capsys):
        """A whole MitsSystem snapshot works too — its `timeseries`
        section is unwrapped."""
        inner = json.loads(
            write_timeseries(tmp_path / "t.json").read_text())
        wrapped = tmp_path / "snapshot.json"
        wrapped.write_text(json.dumps({"topology": "star",
                                       "timeseries": inner}))
        assert main(["dashboard", str(wrapped)]) == 0
        assert "link queue occupancy" in capsys.readouterr().out

    def test_no_input_is_an_error(self, capsys):
        assert main(["dashboard"]) == 2
        assert "--live" in capsys.readouterr().err


class TestReportTelemetryHealth:
    def test_health_block_rendered_and_flagged(self, tmp_path, capsys):
        payload = {
            "name": "demo", "sim_time": 4.0, "events_run": 99,
            "metrics": {"link": {"drops_total": [
                {"type": "counter", "value": 0}]}},
            "telemetry": {
                "flight_recorded": 120, "flight_dropped": 20,
                "tracer_spans": 5, "tracer_dropped": 0,
                "sampler_samples": 40, "sampler_evictions": 3,
            },
        }
        path = tmp_path / "metrics_demo.json"
        path.write_text(json.dumps(payload))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry health" in out
        assert "! flight recorder: 120 events recorded, 20 evicted" in out
        assert "! sampler: 40 samples, 3 ring evictions" in out
        assert "telemetry was truncated" in out

    def test_timeseries_sidecar_is_advertised(self, tmp_path, capsys):
        metrics = tmp_path / "metrics_demo.json"
        metrics.write_text(json.dumps({"name": "demo", "metrics": {}}))
        write_timeseries(tmp_path / "timeseries_demo.json")
        assert main(["report", str(metrics)]) == 0
        assert "timeseries_demo.json" in capsys.readouterr().out
