"""Tests for the perf-regression gate (scripts/bench_gate.py)."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "scripts", "bench_gate.py")
_spec = importlib.util.spec_from_file_location("bench_gate", _SCRIPT)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


@pytest.fixture()
def sandbox(tmp_path, monkeypatch):
    """Keep baselines and observability sidecars out of the repo."""
    monkeypatch.setenv("BENCH_METRICS_DIR", str(tmp_path / "out"))
    monkeypatch.delenv("BENCH_GATE_HANDICAP", raising=False)
    return tmp_path


class TestJudge:
    BASE = {"metrics": {"events_run": 1000, "sim_time": 30.0,
                        "wall_seconds": 1.0, "events_per_sec": 1000.0,
                        "peak_queue_depth": 50.0, "peak_link_queue": 10.0,
                        "peak_player_buffer": 8.0}}

    def current(self, **overrides):
        metrics = dict(self.BASE["metrics"], **overrides)
        return {"metrics": metrics}

    def verdicts(self, cur, **kwargs):
        kwargs.setdefault("tolerance", 0.10)
        kwargs.setdefault("wall_tolerance", 0.50)
        kwargs.setdefault("no_wall", False)
        rows = bench_gate.judge("s", self.BASE, cur, **kwargs)
        return {metric: verdict for metric, *_, verdict in rows}

    def test_identical_run_is_ok(self):
        assert set(self.verdicts(self.current()).values()) == {"ok"}

    def test_slower_wall_fails_only_past_tolerance(self):
        within = self.verdicts(self.current(wall_seconds=1.4))
        assert within["wall_seconds"] == "ok"
        beyond = self.verdicts(self.current(wall_seconds=1.6))
        assert beyond["wall_seconds"] == "FAIL"

    def test_faster_wall_never_fails(self):
        v = self.verdicts(self.current(wall_seconds=0.1,
                                       events_per_sec=10000.0))
        assert v["wall_seconds"] == "ok"
        assert v["events_per_sec"] == "ok"

    def test_throughput_drop_fails(self):
        v = self.verdicts(self.current(events_per_sec=400.0))
        assert v["events_per_sec"] == "FAIL"

    def test_deterministic_drift_fails_both_directions(self):
        assert self.verdicts(
            self.current(events_run=1200))["events_run"] == "FAIL"
        assert self.verdicts(
            self.current(events_run=800))["events_run"] == "FAIL"

    def test_peak_queue_growth_fails_but_shrink_is_fine(self):
        assert self.verdicts(
            self.current(peak_queue_depth=70.0))["peak_queue_depth"] \
            == "FAIL"
        assert self.verdicts(
            self.current(peak_queue_depth=20.0))["peak_queue_depth"] \
            == "ok"

    def test_no_wall_skips_hardware_metrics(self):
        v = self.verdicts(self.current(wall_seconds=99.0,
                                       events_per_sec=1.0), no_wall=True)
        assert "wall_seconds" not in v and "events_per_sec" not in v

    def test_events_per_sim_sec_floor_is_absolute(self):
        """The deterministic load floor: judged against the floor, not
        the baseline, and active regardless of wall settings."""
        cur = self.current(events_per_sim_sec=250.0)
        ok = self.verdicts(cur, min_events_per_sec=200.0)
        assert ok["events_per_sim_sec"] == "ok"
        bad = self.verdicts(cur, min_events_per_sec=300.0)
        assert bad["events_per_sim_sec"] == "FAIL"
        # stays active under --no-wall: the metric is seeded, not timed
        bad = self.verdicts(cur, min_events_per_sec=300.0, no_wall=True)
        assert bad["events_per_sim_sec"] == "FAIL"

    def test_floor_defaults_to_per_scenario_table(self):
        rows = bench_gate.judge(
            "classroom", self.BASE,
            self.current(events_per_sim_sec=1.0),
            tolerance=0.10, wall_tolerance=0.50, no_wall=True)
        verdicts = {metric: verdict for metric, *_, verdict in rows}
        assert verdicts["events_per_sim_sec"] == "FAIL"
        # unknown scenario + no override: no floor row at all
        rows = bench_gate.judge(
            "s", self.BASE, self.current(events_per_sim_sec=1.0),
            tolerance=0.10, wall_tolerance=0.50, no_wall=True)
        assert "events_per_sim_sec" not in {m for m, *_ in rows}

    def test_named_scenario_floors_sit_under_recorded_values(self):
        """The tracked floors must exist for every named scenario and
        be honest — below the recorded events/sim-sec, not aspirational
        numbers the gate could never meet."""
        from repro.core.scenarios import SCENARIOS
        assert set(bench_gate.MIN_EVENTS_PER_SIM_SEC) == set(SCENARIOS)
        for floor in bench_gate.MIN_EVENTS_PER_SIM_SEC.values():
            assert floor > 0

    def test_metric_missing_from_baseline_is_new_not_fail(self):
        base = {"metrics": {k: v for k, v in self.BASE["metrics"].items()
                            if k != "peak_player_buffer"}}
        rows = bench_gate.judge("s", base, self.current(),
                                tolerance=0.10, wall_tolerance=0.50,
                                no_wall=False)
        verdicts = {metric: verdict for metric, *_, verdict in rows}
        assert verdicts["peak_player_buffer"] == "NEW"
        assert "FAIL" not in verdicts.values()


class TestGateEndToEnd:
    """The acceptance criterion: --update writes a baseline, a clean
    rerun passes, and an injected slowdown trips the gate non-zero."""

    def test_update_then_pass_then_injected_regression(
            self, sandbox, monkeypatch, capsys):
        out = str(sandbox)
        assert bench_gate.main(
            ["quickstart", "--update", "--out-dir", out]) == 0
        baseline_file = sandbox / "BENCH_quickstart.json"
        assert baseline_file.exists()
        baseline = json.loads(baseline_file.read_text())
        assert baseline["metrics"]["events_run"] > 0
        capsys.readouterr()

        assert bench_gate.main(["quickstart", "--out-dir", out]) == 0
        assert "BENCH GATE: ok" in capsys.readouterr().out

        monkeypatch.setenv("BENCH_GATE_HANDICAP", "4.0")
        assert bench_gate.main(["quickstart", "--out-dir", out]) == 1
        report = capsys.readouterr().out
        assert "FAIL" in report
        assert "BENCH GATE: REGRESSION" in report
        # deterministic metrics are unaffected by the handicap
        for line in report.splitlines():
            if line.strip().startswith(("events_run", "sim_time")):
                assert line.rstrip().endswith("ok")

    def test_handicapped_run_still_passes_without_wall(
            self, sandbox, monkeypatch, capsys):
        out = str(sandbox)
        bench_gate.main(["quickstart", "--update", "--out-dir", out])
        monkeypatch.setenv("BENCH_GATE_HANDICAP", "4.0")
        assert bench_gate.main(
            ["quickstart", "--no-wall", "--out-dir", out]) == 0

    def test_missing_baseline_is_exit_2(self, sandbox, capsys):
        assert bench_gate.main(
            ["quickstart", "--out-dir", str(sandbox)]) == 2
        assert "MISSING baseline" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self, sandbox):
        with pytest.raises(SystemExit):
            bench_gate.main(["warp-drive", "--out-dir", str(sandbox)])

    def test_sidecars_dumped_for_offline_debugging(self, sandbox):
        bench_gate.main(
            ["quickstart", "--update", "--out-dir", str(sandbox)])
        out = sandbox / "out"
        assert (out / "metrics_gate_quickstart.json").exists()
        assert (out / "timeseries_gate_quickstart.json").exists()
        assert (out / "trace_gate_quickstart.jsonl").exists()


class TestFailureAttribution:
    """Acceptance: a failing gate explains itself — a ranked
    attribution table naming regressed callsites / span kinds, plus a
    machine-readable diff artifact."""

    def test_gate_failure_prints_ranked_attribution(
            self, sandbox, capsys):
        out = str(sandbox)
        bench_gate.main(["quickstart", "--update", "--out-dir", out])
        baseline_file = sandbox / "BENCH_quickstart.json"
        baseline = json.loads(baseline_file.read_text())
        baseline["metrics"]["events_run"] = \
            int(baseline["metrics"]["events_run"] * 1.5)
        baseline_file.write_text(json.dumps(baseline))
        capsys.readouterr()

        assert bench_gate.main(
            ["quickstart", "--no-wall", "--out-dir", out]) == 1
        report = capsys.readouterr().out
        assert "ranked attribution" in report
        assert "callsite" in report
        assert "span-kind" in report
        assert "diff_gate_quickstart.json" in report

        diff_path = sandbox / "out" / "diff_gate_quickstart.json"
        assert diff_path.exists()
        payload = json.loads(diff_path.read_text())
        # the attribution names actual code locations and span kinds
        sources = {row["source"] for row in payload["attribution"]}
        assert {"callsite", "span-kind"} <= sources
        callsites = {row["key"] for row in payload["attribution"]
                     if row["source"] == "callsite"}
        assert any("." in c for c in callsites)  # Class.method names
        # the perturbed deterministic vector is itself a counted delta
        moved = {r["metric"] for r in payload["bench"]
                 if abs(r["delta"]) > 1e-9}
        assert "events_run" in moved
        assert payload["deterministic_delta_count"] >= 1

    def test_passing_gate_stays_quiet(self, sandbox, capsys):
        out = str(sandbox)
        bench_gate.main(["quickstart", "--update", "--out-dir", out])
        capsys.readouterr()
        assert bench_gate.main(
            ["quickstart", "--no-wall", "--out-dir", out]) == 0
        report = capsys.readouterr().out
        assert "ranked attribution" not in report
        assert not (sandbox / "out" / "diff_gate_quickstart.json").exists()
