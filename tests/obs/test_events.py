"""Tests for the flight recorder."""

import json

import pytest

from repro.atm.simulator import Simulator
from repro.obs import FlightRecorder


class TestRecording:
    def test_events_stamp_the_injected_clock(self):
        t = [0.0]
        rec = FlightRecorder(clock=lambda: t[0])
        rec.record("atm", "cell_drop", link="a->b")
        t[0] = 2.5
        rec.record("transport", "retransmit", severity="warning", seq=4)
        first, second = rec.events
        assert first.time == 0.0
        assert first.component == "atm"
        assert first.kind == "cell_drop"
        assert first.attrs == {"link": "a->b"}
        assert second.time == 2.5
        assert second.severity == "warning"

    def test_unknown_severity_rejected(self):
        rec = FlightRecorder(clock=lambda: 0.0)
        with pytest.raises(ValueError):
            rec.record("x", "y", severity="catastrophic")

    def test_disabled_recorder_is_silent(self):
        rec = FlightRecorder(clock=lambda: 0.0, enabled=False)
        rec.record("x", "y")
        assert rec.events == []
        assert rec.recorded == 0


class TestRing:
    def test_capacity_bounds_memory_and_counts_evictions(self):
        rec = FlightRecorder(clock=lambda: 0.0, capacity=5)
        for i in range(12):
            rec.record("x", "tick", i=i)
        assert len(rec.events) == 5
        assert rec.recorded == 12
        assert rec.dropped == 7
        # newest events survive
        assert [e.attrs["i"] for e in rec.events] == [7, 8, 9, 10, 11]

    def test_clear_resets_counters(self):
        rec = FlightRecorder(clock=lambda: 0.0, capacity=2)
        for _ in range(3):
            rec.record("x", "y")
        rec.clear()
        assert rec.events == []
        assert rec.recorded == 0
        assert rec.dropped == 0


class TestQueries:
    def test_for_trace_filters_by_correlation_id(self):
        rec = FlightRecorder(clock=lambda: 0.0)
        rec.record("transport", "retransmit", trace_id=7)
        rec.record("atm", "cell_drop")
        rec.record("streaming", "late_frame", trace_id=7)
        rec.record("transport", "retransmit", trace_id=9)
        kinds = [e.kind for e in rec.for_trace(7)]
        assert kinds == ["retransmit", "late_frame"]

    def test_by_kind_and_counts(self):
        rec = FlightRecorder(clock=lambda: 0.0)
        for _ in range(3):
            rec.record("atm", "cell_drop")
        rec.record("atm", "vc_close")
        assert len(rec.by_kind("cell_drop")) == 3
        assert rec.counts() == {"cell_drop": 3, "vc_close": 1}


class TestExport:
    def test_snapshot_is_json_stable(self):
        rec = FlightRecorder(clock=lambda: 1.5)
        rec.record("mheg", "link_fired", trace_id=3, link="L1")
        snap = rec.snapshot()
        assert snap["recorded"] == 1
        assert snap["counts"] == {"link_fired": 1}
        [ev] = snap["events"]
        assert ev == {"time": 1.5, "component": "mheg",
                      "kind": "link_fired", "severity": "info",
                      "trace_id": 3, "attrs": {"link": "L1"}}
        json.dumps(snap)  # must not raise

    def test_to_jsonl_one_event_per_line(self):
        rec = FlightRecorder(clock=lambda: 0.0)
        rec.record("a", "x")
        rec.record("b", "y")
        lines = rec.to_jsonl().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["component"] == "b"


class TestSimulatorIntegration:
    def test_simulator_owns_a_recorder_on_sim_time(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: sim.recorder.record("test", "tick"))
        sim.run()
        [ev] = sim.recorder.events
        assert ev.time == 2.0
