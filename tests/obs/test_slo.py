"""Tests for SLO evaluation over metrics reports."""

import pytest

from repro.obs import DEFAULT_SLOS, MetricsRegistry, Slo, SloMonitor


def hist_entry(count, p99, **extra):
    entry = {"type": "histogram", "count": count, "p99": p99}
    entry.update(extra)
    return entry


class TestEvaluation:
    def test_histogram_slo_pass_and_fail(self):
        slo = Slo("rtt", "connection", "rtt_seconds", stat="p99",
                  threshold=0.25)
        monitor = SloMonitor([slo])
        [ok] = monitor.evaluate(
            {"connection": {"rtt_seconds": [hist_entry(10, 0.1)]}})
        assert ok.ok and not ok.skipped
        assert ok.observed == 0.1
        [bad] = monitor.evaluate(
            {"connection": {"rtt_seconds": [hist_entry(10, 0.9)]}})
        assert not bad.ok
        assert bad.observed == 0.9

    def test_worst_instrument_decides_a_distribution_slo(self):
        slo = Slo("rtt", "connection", "rtt_seconds", stat="p99",
                  threshold=0.25)
        report = {"connection": {"rtt_seconds": [
            hist_entry(5, 0.05), hist_entry(5, 0.4), hist_entry(5, 0.1)]}}
        [r] = SloMonitor([slo]).evaluate(report)
        assert r.observed == 0.4
        assert not r.ok

    def test_empty_instruments_are_ignored(self):
        slo = Slo("rtt", "connection", "rtt_seconds", stat="p99",
                  threshold=0.25)
        report = {"connection": {"rtt_seconds": [
            hist_entry(0, None), hist_entry(3, 0.2)]}}
        [r] = SloMonitor([slo]).evaluate(report)
        assert r.ok
        assert r.observed == 0.2

    def test_missing_metric_skips_not_fails(self):
        slo = Slo("preroll", "player", "startup_delay_seconds",
                  stat="p99", threshold=2.0)
        [r] = SloMonitor([slo]).evaluate({})
        assert r.skipped
        assert r.ok
        assert r.observed is None

    def test_counter_values_sum_across_entries(self):
        slo = Slo("drops", "link", "drops_total", stat="value",
                  threshold=5.0)
        report = {"link": {"drops_total": [
            {"type": "counter", "value": 2},
            {"type": "counter", "value": 4}]}}
        [r] = SloMonitor([slo]).evaluate(report)
        assert r.observed == 6.0
        assert not r.ok

    def test_ratio_slo_divides_by_denominator_sum(self):
        slo = Slo("drop-rate", "link", "drops_total", stat="value",
                  threshold=0.01, per=("link", "cells_transmitted"))
        report = {"link": {
            "drops_total": [{"type": "counter", "value": 5}],
            "cells_transmitted": [{"type": "counter", "value": 1000}]}}
        [r] = SloMonitor([slo]).evaluate(report)
        assert r.observed == pytest.approx(0.005)
        assert r.ok

    def test_ratio_with_zero_denominator_skips(self):
        slo = Slo("drop-rate", "link", "drops_total", stat="value",
                  threshold=0.01, per=("link", "cells_transmitted"))
        report = {"link": {
            "drops_total": [{"type": "counter", "value": 0}],
            "cells_transmitted": [{"type": "counter", "value": 0}]}}
        [r] = SloMonitor([slo]).evaluate(report)
        assert r.skipped

    def test_gte_objective(self):
        slo = Slo("throughput", "link", "goodput", stat="min",
                  threshold=10.0, op=">=")
        report = {"link": {"goodput": [
            hist_entry(4, 0.0, min=12.0), hist_entry(4, 0.0, min=8.0)]}}
        [r] = SloMonitor([slo]).evaluate(report)
        # for >= the worst instrument is the smallest
        assert r.observed == 8.0
        assert not r.ok

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            Slo("bad", "x", "y", op="==")


class TestSummary:
    def test_summary_is_json_stable_and_aggregates_pass(self):
        slo = Slo("rtt", "connection", "rtt_seconds", stat="p99",
                  threshold=0.25)
        monitor = SloMonitor([slo])
        good = monitor.summary(
            {"connection": {"rtt_seconds": [hist_entry(1, 0.01)]}})
        assert good["pass"] is True
        assert good["results"][0]["name"] == "rtt"
        bad = monitor.summary(
            {"connection": {"rtt_seconds": [hist_entry(1, 1.0)]}})
        assert bad["pass"] is False

    def test_default_slos_judge_a_live_registry(self):
        metrics = MetricsRegistry()
        rtt = metrics.histogram("connection", "rtt_seconds", conn="c1")
        for _ in range(20):
            rtt.observe(0.02)
        results = SloMonitor().evaluate_registry(metrics)
        by_name = {r.slo.name: r for r in results}
        assert by_name["rpc-rtt-p99"].ok
        assert not by_name["rpc-rtt-p99"].skipped
        # nothing streamed, so the player objectives are vacuous
        assert by_name["frame-lateness-p99"].skipped
        assert by_name["preroll-p99"].skipped

    def test_default_slos_cover_the_documented_objectives(self):
        names = {s.name for s in DEFAULT_SLOS}
        assert names == {"rpc-rtt-p99", "frame-lateness-p99",
                         "cell-drop-rate", "preroll-p99"}
