"""Tests for the event-loop profiler."""

import types

import pytest

from repro.atm.simulator import Simulator
from repro.obs.profiler import LoopProfiler, callsite_name


def busy(n=100):
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestDisabledPath:
    """Profiler off must mean *no* per-event cost — not a cheap check,
    none at all."""

    def test_no_shadow_on_a_fresh_simulator(self):
        sim = Simulator()
        assert "_execute" not in sim.__dict__
        assert sim._execute.__func__ is Simulator._execute

    def test_class_execute_allocates_no_closures(self):
        """The disabled path is the plain class method: it must not
        contain nested code objects (closures/lambdas), which would
        mean a per-event allocation."""
        consts = Simulator._execute.__code__.co_consts
        assert not any(isinstance(c, types.CodeType) for c in consts)

    def test_uninstall_restores_the_class_method(self):
        sim = Simulator()
        profiler = LoopProfiler().install(sim)
        assert "_execute" in sim.__dict__
        profiler.uninstall()
        assert "_execute" not in sim.__dict__
        assert sim._execute.__func__ is Simulator._execute


class TestAttribution:
    def test_costs_land_under_the_callback_qualname(self):
        sim = Simulator()
        profiler = LoopProfiler().install(sim)
        for i in range(5):
            sim.schedule(float(i), busy)
        sim.run()
        stats = {s.callsite: s for s in profiler.hotspots(top=None)}
        assert "busy" in stats
        assert stats["busy"].calls == 5
        assert stats["busy"].cum_seconds > 0
        assert stats["busy"].self_seconds <= stats["busy"].cum_seconds

    def test_charged_cells_weight_the_call_count(self):
        """Batched handlers process a whole cell train in one callback
        and bill the per-cell equivalents via charge_cells; the
        profiler must report the legacy-comparable count, not 1."""
        sim = Simulator()
        profiler = LoopProfiler().install(sim)

        def batch_handler():
            sim.charge_cells(4)

        sim.schedule(0.0, batch_handler)
        sim.schedule(1.0, busy)
        sim.run()
        stats = {s.callsite: s for s in profiler.hotspots(top=None)}
        name = "TestAttribution.test_charged_cells_weight_the_call_count" \
               ".<locals>.batch_handler"
        assert stats[name].calls == 5
        assert stats["busy"].calls == 1  # unweighted neighbours intact
        assert profiler.events == 6
        assert sim.events_run == 6  # simulator agrees with the profiler

    def test_lambdas_get_a_name(self):
        sim = Simulator()
        profiler = LoopProfiler().install(sim)
        sim.schedule(0.0, lambda: busy(10))
        sim.run()
        assert any("<lambda>" in s.callsite
                   for s in profiler.hotspots(top=None))

    def test_partials_billed_to_the_underlying_function(self):
        import functools
        assert callsite_name(functools.partial(busy, 5)) \
            == busy.__qualname__
        # nested partials unwrap all the way down
        assert callsite_name(
            functools.partial(functools.partial(busy, 5))) \
            == busy.__qualname__

    def test_wrapped_callbacks_billed_to_the_wrapped_function(self):
        import functools

        @functools.wraps(busy)
        def wrapper(*args, **kwargs):
            return busy(*args, **kwargs)

        assert callsite_name(wrapper) == busy.__qualname__

    def test_profiler_attributes_partial_cost_to_the_function(self):
        import functools
        sim = Simulator()
        profiler = LoopProfiler().install(sim)
        sim.schedule(0.0, functools.partial(busy, 50))
        sim.run()
        profiler.uninstall()
        assert [s.callsite for s in profiler.hotspots()] \
            == [busy.__qualname__]

    def test_hotspots_ranked_by_cumulative_time(self):
        sim = Simulator()
        profiler = LoopProfiler().install(sim)
        sim.schedule(0.0, busy, 20000)
        sim.schedule(1.0, lambda: None)
        sim.run()
        ranked = profiler.hotspots()
        assert ranked[0].callsite == "busy"

    def test_top_limits_the_table(self):
        sim = Simulator()
        profiler = LoopProfiler().install(sim)
        for i, cb in enumerate((busy, lambda: None, sum)):
            sim.schedule(float(i), cb, *(([],) if cb is sum else ()))
        sim.run()
        assert len(profiler.hotspots(top=2)) == 2


class TestReport:
    def test_snapshot_shape_and_ratio(self):
        sim = Simulator()
        profiler = LoopProfiler().install(sim)
        for i in range(10):
            sim.schedule(float(i), busy)
        sim.run()
        snap = profiler.snapshot(top=3)
        assert snap["enabled"] is True
        assert snap["events"] == 10
        assert snap["sim_seconds"] == pytest.approx(9.0)
        assert snap["wall_seconds"] > 0
        assert snap["sim_to_wall"] == pytest.approx(
            snap["sim_seconds"] / snap["wall_seconds"])
        assert len(snap["hotspots"]) <= 3
        assert {"callsite", "calls", "cum_seconds", "self_seconds",
                "mean_us"} <= set(snap["hotspots"][0])

    def test_snapshot_when_never_installed(self):
        snap = LoopProfiler().snapshot()
        assert snap["enabled"] is False
        assert snap["events"] == 0
        assert snap["hotspots"] == []

    def test_double_install_rejected(self):
        sim = Simulator()
        profiler = LoopProfiler().install(sim)
        with pytest.raises(RuntimeError):
            profiler.install(sim)
        profiler.uninstall()

    def test_context_manager_uninstalls(self):
        sim = Simulator()
        with LoopProfiler().install(sim) as profiler:
            sim.schedule(0.0, busy)
            sim.run()
        assert "_execute" not in sim.__dict__
        assert profiler.events == 1

    def test_simulator_metrics_still_recorded_under_profile(self):
        sim = Simulator()
        LoopProfiler().install(sim)
        sim.schedule(0.0, busy)
        sim.run()
        assert sim.events_run == 1
        assert sim.metrics.counter("simulator", "events_run").value == 1
