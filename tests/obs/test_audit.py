"""Tests for the conservation auditor (repro.obs.audit)."""

import pytest

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.link import Link
from repro.atm.switch import Switch
from repro.atm.topology import star_campus
from repro.obs.audit import ConservationAuditor, Violation


def _drive_traffic(sim, net, n=3):
    """Open a VC and push a few PDUs end to end."""
    contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
    got = []
    vc = net.open_vc("a", "b", contract,
                     lambda payload, info: got.append(payload))
    for i in range(n):
        vc.send(bytes(48) + bytes([i]))
    sim.run(until=5.0)
    return vc, got


class TestAuditorConstruction:
    def test_requires_a_simulator(self):
        with pytest.raises(ValueError):
            ConservationAuditor()

    def test_accepts_a_system_duck(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])

        class Duck:
            pass

        duck = Duck()
        duck.sim, duck.network = sim, net
        auditor = ConservationAuditor(duck)
        assert auditor.check() == []
        assert auditor.checks > 0


class TestCleanNetworkAudits:
    def test_fresh_network_is_clean(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b", "c"])
        assert ConservationAuditor(sim=sim, network=net).check() == []

    def test_network_with_traffic_is_clean(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        _, got = _drive_traffic(sim, net)
        assert got, "traffic never arrived — fixture is broken"
        auditor = ConservationAuditor(sim=sim, network=net)
        assert auditor.check() == []

    def test_closed_vc_leaves_no_orphan_routes(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        vc, _ = _drive_traffic(sim, net)
        net.close_vc(vc)
        assert ConservationAuditor(sim=sim, network=net).check() == []

    def test_report_shape(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        report = ConservationAuditor(sim=sim, network=net).report()
        assert report["ok"] is True
        assert report["checks"] > 0
        assert report["violations"] == []


class TestCorruptedCountersAreFlagged:
    """The negative half of the acceptance criterion: a deliberately
    broken counter is caught, named, and quantified."""

    def test_link_counter_corruption(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        _drive_traffic(sim, net)
        link = net.links[("a", "sw0")]
        link.stats.transmitted += 5  # cells out of thin air
        violations = ConservationAuditor(sim=sim, network=net).check()
        assert violations
        broken = [v for v in violations if v.entity == link._label]
        assert broken, f"wrong entity blamed: {violations}"
        v = broken[0]
        assert v.component == "link"
        assert v.invariant == "buffer_conservation"
        assert v.actual == v.expected + 5

    def test_switch_counter_corruption(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        _drive_traffic(sim, net)
        sw = net.switches["sw0"]
        sw.stats.received -= 2
        violations = ConservationAuditor(sim=sim, network=net).check()
        names = {(v.component, v.invariant) for v in violations}
        assert ("switch", "receive_conservation") in names
        v = [x for x in violations
             if x.invariant == "receive_conservation"][0]
        assert v.entity == "sw0"
        assert v.expected == v.actual - 2

    def test_player_cursor_corruption(self):
        from repro.streaming.player import VideoPlayer
        sim = Simulator()
        player = VideoPlayer(sim, name="p1")
        player.stats.frames_played += 1  # played a frame never received
        violations = ConservationAuditor(sim=sim).check()
        invariants = {v.invariant for v in violations}
        assert "cursor_conservation" in invariants
        assert "arrival_conservation" in invariants

    def test_missing_route_is_flagged(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        vc, _ = _drive_traffic(sim, net)
        sw = net.switches["sw0"]
        key = next(iter(sw._table))
        del sw._table[key]
        violations = ConservationAuditor(sim=sim, network=net).check()
        assert any(v.invariant == "missing_route" for v in violations)

    def test_violation_str_names_the_law(self):
        v = Violation("link", "a->sw0", "buffer_conservation", 10, 12,
                      detail="why")
        text = str(v)
        assert "a->sw0" in text and "buffer_conservation" in text
        assert "10" in text and "12" in text


class TestBareComponentAudit:
    """Unit-level audit via links=/switches= without a network."""

    def test_bare_link(self):
        sim = Simulator()
        link = Link(sim, rate_bps=424e3, name="x->y")
        auditor = ConservationAuditor(sim=sim, links=[link])
        assert auditor.check() == []
        link.stats.enqueued += 1
        assert auditor.check() != []

    def test_bare_switch(self):
        sim = Simulator()
        sw = Switch(sim, "swX")
        auditor = ConservationAuditor(sim=sim, switches=[sw])
        assert auditor.check() == []
        sw.stats.unroutable += 1
        violations = auditor.check()
        assert violations[0].invariant == "receive_conservation"


class TestLedgerAudit:
    def test_ledger_divergence_is_flagged(self):
        from repro.obs.accounting import Ledger
        sim = Simulator(ledger=Ledger())
        sim.metrics.counter("vc", "pdus_sent", vc="9").inc(4)
        sim.ledger.account("vc", "9").sent(units=3)
        violations = ConservationAuditor(sim=sim).check()
        assert len(violations) == 1
        v = violations[0]
        assert v.component == "ledger"
        assert v.entity == "vc:9"
        assert v.invariant == "registry_divergence_pdus_sent"
        assert v.expected == 4 and v.actual == 3


class TestScenarioAudit:
    """The positive half of the acceptance criterion, in-suite: the
    quickstart scenario audits clean at its horizon (classroom and
    faulty-classroom are covered by the chaos suite and CI)."""

    def test_quickstart_is_clean(self):
        from repro.core.scenarios import build
        run = build("quickstart", accounting=True)
        run.run_to_horizon()
        auditor = ConservationAuditor(run.mits)
        assert auditor.check() == []
        assert auditor.checks > 100
