"""Tests for critical-path analysis (repro.obs.critical).

The adversarial shapes here — single spans, overlapping siblings,
fully-shadowed siblings, orphaned children — are exactly what sampled
archives produce, so the analyser must stay total over all of them:
segments always tile the root duration, nothing crashes, nothing is
double-charged.
"""

import os

import pytest

from repro.core.scenarios import build
from repro.obs.critical import (
    analyze_trace, attribution, component_of, critical_segments, kind_of,
    normalize_spans, render_attribution, render_critical_path,
    select_traces, tail_trace_ids,
)
from repro.obs.export import dump_observability
from repro.obs.report import load_trace_file
from repro.obs.sink import load_obs_sidecar


def span(span_id, name, start, end, parent_id=None, trace_id=1):
    return {"span_id": span_id, "parent_id": parent_id,
            "trace_id": trace_id, "name": name, "start": start,
            "end": end, "duration": end - start, "attrs": {}}


def tiles(analysis):
    """Segments are start-ordered, non-overlapping, and sum to the
    root duration."""
    segs = analysis["segments"]
    total = sum(s["seconds"] for s in segs)
    assert total == pytest.approx(analysis["duration"])
    for prev, nxt in zip(segs, segs[1:]):
        assert nxt["start"] >= prev["end"] - 1e-9


class TestNames:
    def test_component_of(self):
        assert component_of("rpc.client:GetContent") == "rpc"
        assert component_of("streaming.send") == "streaming"
        assert component_of("mheg") == "mheg"

    def test_kind_of_pools_methods(self):
        assert kind_of("rpc.client:GetContent") == "rpc.client"
        assert kind_of("rpc.client:Register") == "rpc.client"
        assert kind_of("streaming.send") == "streaming.send"


class TestSingleSpan:
    def test_trivial_trace(self):
        a = analyze_trace([span(1, "rpc.client:Get", 0.0, 2.0)])
        assert a["root"] == "rpc.client:Get"
        assert a["duration"] == pytest.approx(2.0)
        assert a["path_span_ids"] == [1]
        assert a["self_time"][1] == pytest.approx(2.0)
        assert a["slack"][1] == 0.0
        assert a["by_component"]["rpc"]["share"] == pytest.approx(1.0)
        tiles(a)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            analyze_trace([])


class TestSequentialChildren:
    def test_path_walks_both_legs(self):
        spans = [span(1, "navigator.enter", 0.0, 10.0),
                 span(2, "rpc.client:A", 0.0, 4.0, parent_id=1),
                 span(3, "rpc.client:B", 4.0, 10.0, parent_id=1)]
        a = analyze_trace(spans)
        tiles(a)
        assert set(a["path_span_ids"]) == {2, 3}
        # the parent is fully covered by its children: no self-time,
        # no path charge
        assert a["self_time"][1] == pytest.approx(0.0)
        assert a["by_component"]["rpc"]["seconds"] == pytest.approx(10.0)

    def test_gap_charged_to_parent(self):
        spans = [span(1, "navigator.enter", 0.0, 10.0),
                 span(2, "rpc.client:A", 0.0, 3.0, parent_id=1),
                 span(3, "rpc.client:B", 5.0, 10.0, parent_id=1)]
        a = analyze_trace(spans)
        tiles(a)
        # the [3, 5) gap between the legs is the parent's own work
        assert a["self_time"][1] == pytest.approx(2.0)
        parent_secs = sum(s["seconds"] for s in a["segments"]
                          if s["span_id"] == 1)
        assert parent_secs == pytest.approx(2.0)


class TestOverlappingSiblings:
    def test_later_finisher_wins_the_overlap(self):
        spans = [span(1, "root.r", 0.0, 10.0),
                 span(2, "work.a", 0.0, 6.0, parent_id=1),
                 span(3, "work.b", 4.0, 10.0, parent_id=1)]
        a = analyze_trace(spans)
        tiles(a)
        # b blocks [4, 10); a is clipped to its pre-overlap [0, 4)
        a_secs = sum(s["seconds"] for s in a["segments"]
                     if s["span_id"] == 2)
        b_secs = sum(s["seconds"] for s in a["segments"]
                     if s["span_id"] == 3)
        assert a_secs == pytest.approx(4.0)
        assert b_secs == pytest.approx(6.0)

    def test_shadowed_sibling_contributes_nothing(self):
        spans = [span(1, "root.r", 0.0, 10.0),
                 span(2, "work.a", 2.0, 9.0, parent_id=1),
                 span(3, "work.b", 3.0, 8.0, parent_id=1)]
        a = analyze_trace(spans)
        tiles(a)
        assert 3 not in a["path_span_ids"]
        # but its slack is visible: it could run 1s longer before
        # delaying the last finisher's parent
        assert a["slack"][3] == pytest.approx(2.0)

    def test_slack_clamped_for_overrunning_child(self):
        spans = [span(1, "root.r", 0.0, 10.0),
                 span(2, "work.late", 8.0, 12.0, parent_id=1)]
        a = analyze_trace(spans)
        assert a["slack"][2] == 0.0


class TestOrphans:
    def test_missing_parent_becomes_root(self):
        spans = [span(1, "rpc.server", 0.0, 5.0),
                 span(2, "streaming.send", 0.0, 7.0, parent_id=99)]
        a = analyze_trace(spans)
        # the longest orphan anchors the analysis ...
        assert a["root"] == "streaming.send"
        assert a["duration"] == pytest.approx(7.0)
        # ... and the other root is reported, not silently dropped
        assert [r["name"] for r in a["other_roots"]] == ["rpc.server"]
        tiles(a)

    def test_orphan_keeps_its_children(self):
        spans = [span(2, "rpc.server:Get", 1.0, 6.0, parent_id=99),
                 span(3, "db.get_content", 2.0, 5.0, parent_id=2)]
        a = analyze_trace(spans)
        assert a["root"] == "rpc.server:Get"
        assert set(a["path_span_ids"]) == {2, 3}
        tiles(a)

    def test_render_notes_orphaned_subtrees(self):
        spans = [span(1, "rpc.server", 0.0, 5.0),
                 span(2, "streaming.send", 0.0, 7.0, parent_id=99)]
        assert "orphaned subtrees" in render_critical_path(spans)


class TestTailExemplars:
    def test_p99_selects_the_slowest(self):
        spans = [span(i, "rpc.client", 0.0, float(i), trace_id=i)
                 for i in range(1, 101)]
        # nearest-rank p99 of 100 samples is the 99th: two exemplars
        assert tail_trace_ids(spans, 0.99) == [99, 100]

    def test_always_at_least_one(self):
        spans = [span(1, "rpc.client", 0.0, 1.0, trace_id=1)]
        assert tail_trace_ids(spans, 0.99) == [1]

    def test_quantile_validated(self):
        with pytest.raises(ValueError):
            tail_trace_ids([], 1.5)

    def test_select_unknown_trace_raises(self):
        spans = [span(1, "rpc.client", 0.0, 1.0, trace_id=1)]
        with pytest.raises(ValueError):
            select_traces(spans, trace_id=42)


class TestAttribution:
    def test_aggregates_across_traces(self):
        spans = [span(1, "rpc.client", 0.0, 2.0, trace_id=1),
                 span(2, "streaming.send", 0.0, 8.0, trace_id=2)]
        attr = attribution(spans)
        assert attr["traces"] == 2
        assert attr["path_seconds"] == pytest.approx(10.0)
        assert attr["by_component"]["streaming"]["share"] \
            == pytest.approx(0.8)

    def test_trace_id_filter(self):
        spans = [span(1, "rpc.client", 0.0, 2.0, trace_id=1),
                 span(2, "streaming.send", 0.0, 8.0, trace_id=2)]
        attr = attribution(spans, trace_ids=[1])
        assert attr["traces"] == 1
        assert "streaming" not in attr["by_component"]

    def test_render_handles_no_spans(self):
        assert "no spans" in render_attribution([])


@pytest.fixture(scope="module")
def quickstart_archive(tmp_path_factory):
    """One quickstart run archived both ways: streamed obs sidecar
    and monolithic trace sidecar."""
    out = str(tmp_path_factory.mktemp("critical"))
    obs_path = os.path.join(out, "obs_q.jsonl")
    run = build("quickstart", stream=obs_path)
    run.run_to_horizon()
    dump_observability(run.mits, "q", out)
    return run.mits, out, obs_path


class TestArchiveParity:
    def test_streamed_and_monolithic_agree(self, quickstart_archive):
        _, out, obs_path = quickstart_archive
        mono, _events = load_trace_file(
            os.path.join(out, "trace_q.jsonl"))
        streamed = load_obs_sidecar(obs_path)["spans"]
        assert attribution(normalize_spans(mono)) \
            == attribution(normalize_spans(streamed))

    def test_live_tracer_matches_archive(self, quickstart_archive):
        mits, _, obs_path = quickstart_archive
        streamed = load_obs_sidecar(obs_path)["spans"]
        assert mits.sim.tracer.critical() == attribution(streamed)

    def test_tracer_critical_single_trace(self, quickstart_archive):
        mits, _, _ = quickstart_archive
        tid = mits.sim.tracer.spans[0].trace_id
        analysis = mits.sim.tracer.critical(tid)
        assert analysis["trace_id"] == tid
        with pytest.raises(ValueError):
            mits.sim.tracer.critical(10 ** 9)


class TestClassroomAttribution:
    """Acceptance: the component attribution on the classroom archive
    must agree with what profile_top shows — the streaming cell path
    dominates end-to-end latency."""

    def test_streaming_dominates(self):
        run = build("classroom")
        run.run_to_horizon()
        attr = attribution(
            [s.to_dict() for s in run.mits.sim.tracer.spans])
        ranked = sorted(attr["by_component"].items(),
                        key=lambda kv: kv[1]["seconds"], reverse=True)
        assert ranked[0][0] == "streaming"
        assert ranked[0][1]["share"] > 0.5
