"""Tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs import (
    MetricsRegistry, NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, TIME_BUCKETS,
)
from repro.obs.metrics import Histogram


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("link", "drops", link="a->b")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_memoised_by_key(self):
        reg = MetricsRegistry()
        a = reg.counter("link", "drops", link="a->b")
        b = reg.counter("link", "drops", link="a->b")
        other = reg.counter("link", "drops", link="b->a")
        assert a is b
        assert a is not other

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("vc", "pdus", vc=1, route="a->b")
        b = reg.counter("vc", "pdus", route="a->b", vc=1)
        assert a is b

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", "y")
        with pytest.raises(TypeError):
            reg.gauge("x", "y")


class TestGauge:
    def test_set_tracks_watermarks(self):
        reg = MetricsRegistry()
        g = reg.gauge("link", "occupancy", link="l")
        g.set(3)
        g.set(10)
        g.set(1)
        assert g.value == 1
        assert g.min == 1
        assert g.max == 10

    def test_add(self):
        g = MetricsRegistry().gauge("c", "n")
        g.add(2.5)
        g.add(-1.0)
        assert g.value == 1.5


class TestHistogram:
    def test_observe_and_stats(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        assert h.min == 0.05
        assert h.max == 5.0
        assert h.counts == [1, 2, 1]

    def test_overflow_bucket(self):
        h = Histogram(buckets=(1.0,))
        h.observe(100.0)
        assert h.overflow == 1

    def test_nan_ignored(self):
        h = Histogram()
        h.observe(float("nan"))
        assert h.count == 0

    def test_quantile(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0

    def test_default_buckets_are_time_ladder(self):
        h = Histogram()
        assert h.bounds == TIME_BUCKETS

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_bounded_memory(self):
        h = Histogram()
        for i in range(100_000):
            h.observe(i * 1e-6)
        assert h.count == 100_000
        assert len(h.counts) == len(TIME_BUCKETS)


class TestHistogramQuantileEdges:
    def test_empty_histogram_is_zero_for_any_q(self):
        h = Histogram(buckets=(1.0, 2.0))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.99) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_single_sample(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        # every non-zero quantile lands in the sample's bucket
        assert h.quantile(0.5) == 2.0
        assert h.quantile(0.99) == 2.0
        assert h.quantile(1.0) == 2.0

    def test_q_zero_is_the_lowest_bound(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        h.observe(3.0)
        assert h.quantile(0.0) == 1.0

    def test_q_one_covers_overflowed_samples(self):
        """With samples past the last bucket, q=1.0 falls back to the
        exact observed max instead of understating the tail."""
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        h.observe(100.0)
        assert h.quantile(1.0) == 100.0

    def test_out_of_range_q_rejected(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        for bad in (-0.01, 1.01, 2.0):
            with pytest.raises(ValueError):
                h.quantile(bad)


class TestDisabledRegistry:
    def test_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a", "b") is NULL_COUNTER
        assert reg.gauge("a", "b") is NULL_GAUGE
        assert reg.histogram("a", "b") is NULL_HISTOGRAM
        # mutators are no-ops, not errors
        reg.counter("a", "b").inc()
        reg.gauge("a", "b").set(5)
        reg.histogram("a", "b").observe(1.0)
        assert len(reg) == 0
        assert reg.report() == {}


class TestExport:
    def test_report_shape(self):
        reg = MetricsRegistry()
        reg.counter("link", "drops", link="a->b").inc(3)
        reg.histogram("vc", "delay", vc=1).observe(0.01)
        rep = reg.report()
        [drops] = rep["link"]["drops"]
        assert drops["labels"] == {"link": "a->b"}
        assert drops["value"] == 3
        [delay] = rep["vc"]["delay"]
        assert delay["count"] == 1

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c", "n").inc()
        reg.gauge("c", "g").set(2.0)
        reg.histogram("c", "h").observe(0.5)
        back = json.loads(reg.to_json())
        assert back["c"]["n"][0]["value"] == 1

    def test_find(self):
        reg = MetricsRegistry()
        reg.counter("link", "drops", link="x").inc()
        reg.counter("link", "drops", link="y").inc()
        reg.counter("vc", "pdus").inc()
        assert len(reg.find("link", "drops")) == 2
        assert len(reg.find("vc")) == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c", "n").inc()
        reg.reset()
        assert reg.report() == {}


class TestDelta:
    """MetricsRegistry.delta — per-instrument diff of two reports."""

    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("link", "drops", link="a->b").inc(3)
        reg.gauge("player", "buffer", player="p1").set(5)
        reg.histogram("vc", "delay").observe(0.01)
        return reg

    def test_identical_reports_have_zero_deltas(self):
        report = self._registry().report()
        rows = MetricsRegistry.delta(report, report)
        assert rows
        assert all(r["delta"] == 0 for r in rows.values())
        assert all("only" not in r for r in rows.values())

    def test_counter_movement_and_key_shape(self):
        reg = self._registry()
        before = reg.report()
        reg.counter("link", "drops", link="a->b").inc(4)
        rows = MetricsRegistry.delta(before, reg.report())
        row = rows["link.drops{link=a->b}"]
        assert row == {"kind": "counter", "before": 3.0, "after": 7.0,
                       "delta": 4.0}

    def test_histograms_diff_their_count(self):
        reg = self._registry()
        before = reg.report()
        reg.histogram("vc", "delay").observe(0.5)
        reg.histogram("vc", "delay").observe(1.5)
        row = MetricsRegistry.delta(before, reg.report())["vc.delay{}"]
        assert row["kind"] == "histogram"
        assert row["delta"] == 2.0

    def test_one_sided_instruments_are_marked(self):
        reg = self._registry()
        before = reg.report()
        reg.counter("switch", "received", switch="sw0").inc()
        rows = MetricsRegistry.delta(before, reg.report())
        new = rows["switch.received{switch=sw0}"]
        assert new["only"] == "after"
        assert new["before"] == 0.0 and new["delta"] == 1.0
        gone = MetricsRegistry.delta(reg.report(), before)
        assert gone["switch.received{switch=sw0}"]["only"] == "before"
        assert gone["switch.received{switch=sw0}"]["delta"] == -1.0

    def test_empty_reports(self):
        assert MetricsRegistry.delta({}, {}) == {}

    def test_counter_reset_clamps_rate(self):
        """A counter that went backwards was reset (component rebuilt,
        registry recycled); delta is the after value — everything
        accumulated since the reset — never negative."""
        reg_a = MetricsRegistry()
        reg_a.counter("link", "drops", link="a->b").inc(100)
        reg_b = MetricsRegistry()
        reg_b.counter("link", "drops", link="a->b").inc(7)
        row = MetricsRegistry.delta(
            reg_a.report(), reg_b.report())["link.drops{link=a->b}"]
        assert row["reset"] is True
        assert row["delta"] == 7.0
        assert row["delta"] >= 0

    def test_histogram_count_reset_clamps_rate(self):
        reg_a = MetricsRegistry()
        for _ in range(5):
            reg_a.histogram("vc", "delay").observe(0.1)
        reg_b = MetricsRegistry()
        reg_b.histogram("vc", "delay").observe(0.1)
        row = MetricsRegistry.delta(
            reg_a.report(), reg_b.report())["vc.delay{}"]
        assert row["reset"] is True
        assert row["delta"] == 1.0

    def test_gauge_fall_is_not_a_reset(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("player", "buffer", player="p1")
        gauge.set(8)
        before = reg.report()
        gauge.set(2)
        row = MetricsRegistry.delta(
            before, reg.report())["player.buffer{player=p1}"]
        assert "reset" not in row
        assert row["delta"] == -6.0

    def test_one_sided_rows_never_marked_reset(self):
        """An instrument absent from one side diffs against zero; the
        before-only case (after value 0 < before value) must read as
        a disappearance, not a counter reset."""
        reg = MetricsRegistry()
        reg.counter("switch", "received", switch="sw0").inc(9)
        gone = MetricsRegistry.delta(
            reg.report(), {})["switch.received{switch=sw0}"]
        assert gone["only"] == "before"
        assert "reset" not in gone
        assert gone["delta"] == -9.0
