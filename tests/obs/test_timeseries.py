"""Tests for the time-series telemetry sampler."""

import json

import pytest

from repro.atm.simulator import Simulator
from repro.obs.timeseries import Series, TelemetrySampler, load_timeseries


def make_sim_with_work(duration=10.0, step=0.5):
    """A simulator with a counter/gauge workload across *duration*."""
    sim = Simulator()
    counter = sim.metrics.counter("work", "items_done")
    gauge = sim.metrics.gauge("work", "in_flight")
    hist = sim.metrics.histogram("work", "latency_seconds")

    def tick(i):
        counter.inc(10)
        gauge.set(i % 4)
        hist.observe(0.001 * (i + 1))

    n = int(duration / step)
    for i in range(n):
        sim.schedule(step * (i + 1), tick, i)
    return sim


class TestSampling:
    def test_samples_on_the_simulated_clock(self):
        sim = make_sim_with_work()
        sampler = TelemetrySampler(sim, interval=1.0)
        sampler.start()
        sim.run(until=10.0)
        series = sampler.get("work", "items_done")
        assert series is not None
        # one sample at start + one per interval while work was pending
        assert len(series) >= 9
        assert series.times[0] == 0.0
        # times advance by the interval
        deltas = [b - a for a, b in zip(series.times, list(series.times)[1:])]
        assert all(d == pytest.approx(1.0) for d in deltas)

    def test_every_instrument_kind_gets_a_series(self):
        sim = make_sim_with_work()
        sampler = TelemetrySampler(sim, interval=1.0)
        sampler.start()
        sim.run(until=10.0)
        assert sampler.get("work", "items_done").kind == "counter"
        assert sampler.get("work", "in_flight").kind == "gauge"
        assert sampler.get("work", "latency_seconds").kind == "histogram"
        # simulator's own instruments are sampled too
        assert sampler.get("simulator", "queue_depth") is not None

    def test_counter_rate_derivation(self):
        sim = make_sim_with_work(duration=4.0, step=0.5)
        sampler = TelemetrySampler(sim, interval=1.0)
        sampler.start()
        sim.run(until=4.0)
        series = sampler.get("work", "items_done")
        # 10 items per 0.5s => 20 items/s at every full interval
        assert series.rates is not None
        steady = list(series.rates)[1:]
        assert steady and all(r == pytest.approx(20.0) for r in steady)

    def test_histogram_series_tracks_count_and_p99(self):
        sim = make_sim_with_work()
        sampler = TelemetrySampler(sim, interval=1.0)
        sampler.start()
        sim.run(until=10.0)
        series = sampler.get("work", "latency_seconds")
        assert list(series.values) == sorted(series.values)  # cumulative
        assert series.p99s is not None
        assert series.p99s[-1] > 0

    def test_gauge_series_tracks_level(self):
        sim = make_sim_with_work()
        sampler = TelemetrySampler(sim, interval=1.0)
        sampler.start()
        sim.run(until=10.0)
        series = sampler.get("work", "in_flight")
        assert set(series.values) <= {0.0, 0, 1, 2, 3}

    def test_bad_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TelemetrySampler(sim, interval=0.0)
        with pytest.raises(ValueError):
            TelemetrySampler(sim, capacity=1)


class TestCounterReset:
    def test_registry_reset_never_yields_negative_rates(self):
        """A counter that moves backwards (registry reset) clamps the
        derived rate to zero instead of reporting a negative rate."""
        sim = Simulator()
        counter = sim.metrics.counter("work", "items_done")
        sampler = TelemetrySampler(sim, interval=1.0)
        sampler.start()
        counter.inc(100)
        sim.schedule(1.0, lambda: None)
        sim.run(until=1.5)  # sample sees value=100

        sim.metrics.reset()  # fresh instruments, counts restart at 0
        fresh = sim.metrics.counter("work", "items_done")
        fresh.inc(5)
        sim.schedule(1.0, lambda: None)
        sim.run(until=3.5)

        series = sampler.get("work", "items_done")
        assert series is not None
        assert all(r >= 0.0 for r in series.rates)
        # and the clamped tick really was the reset one
        assert any(v == 100 for v in series.values)
        assert any(v <= 5 for v in list(series.values)[1:])


class TestDormancy:
    def test_run_without_horizon_still_drains(self):
        """The sampler must never keep the simulation alive on its own."""
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sampler = TelemetrySampler(sim, interval=0.25)
        sampler.start()
        end = sim.run()  # would never return if the sampler re-armed
        assert end <= 1.25
        assert sampler.dormant

    def test_wakes_when_new_work_arrives(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sampler = TelemetrySampler(sim, interval=0.25)
        sampler.start()
        sim.run()
        assert sampler.dormant
        before = sampler.samples
        sim.schedule(2.0, lambda: None)
        assert not sampler.dormant  # re-armed by schedule()
        sim.run()
        assert sampler.samples > before

    def test_stop_detaches_from_simulator(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval=0.25)
        sampler.start()
        sampler.stop()
        before = sampler.samples
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sampler.samples == before
        assert sim._sampler is None


class TestBoundedMemory:
    def test_ring_eviction_is_counted(self):
        sim = make_sim_with_work(duration=50.0, step=0.5)
        sampler = TelemetrySampler(sim, interval=1.0, capacity=8)
        sampler.start()
        sim.run(until=50.0)
        series = sampler.get("work", "items_done")
        assert len(series) == 8  # bounded
        assert series.evicted > 0
        assert sampler.evictions >= series.evicted
        # the ring holds the *newest* samples
        assert series.times[-1] > 40.0


class TestRollups:
    def test_windowed_rollup(self):
        series = Series("c", "n", {}, "gauge", capacity=16)
        for i in range(10):
            series.record(float(i), float(i))
        full = series.rollup()
        assert full["min"] == 0.0 and full["max"] == 9.0
        assert full["mean"] == pytest.approx(4.5)
        last3 = series.rollup(window=3)
        assert last3["min"] == 7.0 and last3["count"] == 3

    def test_empty_rollup(self):
        series = Series("c", "n", {}, "gauge", capacity=4)
        assert series.rollup()["count"] == 0
        assert series.rollup()["p99"] is None

    def test_unknown_channel_rejected(self):
        series = Series("c", "n", {}, "gauge", capacity=4)
        with pytest.raises(ValueError):
            series.rollup(channel="rates")  # gauges have no rate ring


class TestExport:
    def test_snapshot_is_json_stable_and_reloadable(self):
        sim = make_sim_with_work()
        sampler = TelemetrySampler(sim, interval=1.0)
        sampler.start()
        sim.run(until=10.0)
        snap = json.loads(json.dumps(sampler.snapshot()))
        assert snap["samples"] == sampler.samples
        reloaded = load_timeseries(snap)
        by_key = {s.key: s for s in reloaded}
        original = sampler.get("work", "items_done")
        twin = by_key[original.key]
        assert list(twin.times) == list(original.times)
        assert list(twin.values) == list(original.values)
        assert list(twin.rates) == list(original.rates)

    def test_peak(self):
        sim = make_sim_with_work()
        sampler = TelemetrySampler(sim, interval=1.0)
        sampler.start()
        sim.run(until=10.0)
        assert sampler.peak("work", "in_flight") == 3
        assert sampler.peak("work", "nope") is None
