"""Merge operators and the split-run equivalence harness
(repro.obs.merge): sharded observability must fold back into exactly
the monolithic view, whatever order the shards arrive in."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.scenarios import build
from repro.obs.accounting import account_weight
from repro.obs.merge import (
    load_shard,
    merge_archives,
    merge_ledger,
    merge_metrics,
    merge_timeseries,
    merged_canonical_form,
    remap_disjoint,
    shard_from_mits,
    sketch_trim,
    split_shard,
    write_merged,
)

_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def _shard(name, sim_time, metrics, **over):
    base = {"name": name, "path": f"<test:{name}>",
            "sim_time": sim_time, "events_run": 0, "metrics": metrics,
            "spans": [], "events": [], "timeseries": None,
            "accounting": None, "watchdog": None, "audit": None,
            "telemetry": None, "overhead": None}
    base.update(over)
    return base


@pytest.fixture(scope="module")
def classroom_mono():
    """One monolithic classroom run, snapshotted as a shard."""
    run = build("classroom", accounting=True)
    run.run_to_horizon()
    return shard_from_mits(run.mits, "classroom")


class TestMetricsMerge:
    def test_counters_sum(self):
        a = {"link": {"drops": [{"labels": {"link": "a"},
                                 "type": "counter", "value": 3}]}}
        b = {"link": {"drops": [{"labels": {"link": "a"},
                                 "type": "counter", "value": 4}]}}
        merged, _ = merge_metrics([_shard("a", 1.0, a),
                                   _shard("b", 1.0, b)])
        assert merged["link"]["drops"][0]["value"] == 7

    def test_gauge_latest_sim_time_wins_with_provenance(self):
        a = {"link": {"q": [{"labels": {}, "type": "gauge", "value": 5,
                             "min": 0, "max": 9}]}}
        b = {"link": {"q": [{"labels": {}, "type": "gauge", "value": 2,
                             "min": 1, "max": 4}]}}
        merged, prov = merge_metrics(
            [_shard("early", 10.0, a), _shard("late", 20.0, b)])
        entry = merged["link"]["q"][0]
        assert entry["value"] == 2          # the later shard's level
        assert entry["min"] == 0 and entry["max"] == 9
        assert prov["link.q{}"] == {"shard": "late", "sim_time": 20.0}

    def test_histograms_bucket_add_and_requantile(self):
        h1 = {"labels": {}, "type": "histogram", "count": 2, "sum": 3.0,
              "mean": 1.5, "min": 1.0, "max": 2.0, "overflow": 0,
              "buckets": [{"le": 1.0, "count": 1},
                          {"le": 4.0, "count": 1}],
              "p50": 1.0, "p99": 4.0}
        h2 = {"labels": {}, "type": "histogram", "count": 1, "sum": 9.0,
              "mean": 9.0, "min": 9.0, "max": 9.0, "overflow": 1,
              "buckets": [{"le": 16.0, "count": 1}],
              "p50": 16.0, "p99": 16.0}
        merged, _ = merge_metrics(
            [_shard("a", 1.0, {"c": {"m": [h1]}}),
             _shard("b", 1.0, {"c": {"m": [h2]}})])
        entry = merged["c"]["m"][0]
        assert entry["count"] == 3
        assert entry["sum"] == 12.0
        assert entry["mean"] == 4.0
        assert entry["min"] == 1.0 and entry["max"] == 9.0
        assert entry["overflow"] == 1
        assert entry["buckets"] == [{"le": 1.0, "count": 1},
                                    {"le": 4.0, "count": 1},
                                    {"le": 16.0, "count": 1}]
        # target 1.5 → first bound whose running count crosses it
        assert entry["p50"] == 4.0
        assert entry["p99"] == 16.0

    def test_merge_is_order_insensitive(self, classroom_mono):
        parts = split_shard(classroom_mono, 3)
        fwd = merge_archives(parts, name="x")
        rev = merge_archives(list(reversed(parts)), name="x")
        assert json.dumps(fwd, sort_keys=True, default=repr) \
            == json.dumps(rev, sort_keys=True, default=repr)


class TestTraceRemap:
    def test_disjoint_ids_pass_through(self):
        a = _shard("a", 1.0, {}, spans=[
            {"span_id": 1, "parent_id": None, "trace_id": 1,
             "name": "x", "start": 0.0, "end": 1.0, "duration": 1.0,
             "attrs": {}}])
        b = _shard("b", 1.0, {}, spans=[
            {"span_id": 2, "parent_id": None, "trace_id": 2,
             "name": "y", "start": 0.0, "end": 1.0, "duration": 1.0,
             "attrs": {}}])
        out, remaps = remap_disjoint([a, b])
        assert remaps == {"trace_id_remaps": 0, "span_id_remaps": 0}
        assert out[0]["spans"] == a["spans"]

    def test_colliding_ids_are_remapped_above_the_global_max(self):
        span = {"span_id": 1, "parent_id": None, "trace_id": 7,
                "name": "x", "start": 0.0, "end": 1.0, "duration": 1.0,
                "attrs": {}}
        child = {"span_id": 2, "parent_id": 1, "trace_id": 7,
                 "name": "y", "start": 0.2, "end": 0.8,
                 "duration": 0.6, "attrs": {}}
        event = {"time": 0.5, "component": "c", "kind": "k",
                 "severity": "info", "trace_id": 7, "attrs": {}}
        a = _shard("a", 1.0, {}, spans=[dict(span)],
                   events=[dict(event)])
        b = _shard("b", 1.0, {}, spans=[dict(span), dict(child)],
                   events=[dict(event)])
        out, remaps = remap_disjoint([a, b])
        assert remaps["trace_id_remaps"] == 1
        # only the root's span_id collides; the child's id 2 is unique
        assert remaps["span_id_remaps"] == 1
        new_trace = out[1]["spans"][0]["trace_id"]
        assert new_trace > 7
        # the parent link and the event correlation follow the remap
        assert out[1]["spans"][1]["parent_id"] \
            == out[1]["spans"][0]["span_id"]
        assert out[1]["events"][0]["trace_id"] == new_trace
        # the earlier (canonical-order) shard is untouched
        assert out[0]["spans"][0]["trace_id"] == 7


class TestTimeseriesMerge:
    def test_counter_series_tick_align_sums_values_and_rates(self):
        s1 = {"component": "link", "name": "cells", "labels": {},
              "kind": "counter", "evicted": 0,
              "times": [1.0, 2.0], "values": [10, 20],
              "rates": [0.0, 10.0], "rollup": {}, "rate_rollup": {}}
        s2 = {"component": "link", "name": "cells", "labels": {},
              "kind": "counter", "evicted": 0,
              "times": [1.0, 3.0], "values": [5, 11],
              "rates": [0.0, 3.0], "rollup": {}, "rate_rollup": {}}
        snap = lambda s: {"enabled": True, "interval": 1.0,  # noqa: E731
                          "capacity": 8, "samples": 2, "evictions": 0,
                          "series": [s]}
        merged = merge_timeseries(
            [_shard("a", 3.0, {}, timeseries=snap(s1)),
             _shard("b", 3.0, {}, timeseries=snap(s2))])
        series = merged["series"][0]
        assert series["times"] == [1.0, 2.0, 3.0]
        # carry-forward: at t=2 shard b still reads 5; at t=3 shard a
        # still reads 20
        assert series["values"] == [15, 25, 31]
        # re-derived on the union grid: sum of the shard rates
        assert series["rates"] == [0.0, 10.0, 6.0]
        assert merged["samples"] == 4

    def test_single_source_series_pass_through_verbatim(self):
        s1 = {"component": "player", "name": "buffer",
              "labels": {"player": "a"}, "kind": "gauge", "evicted": 2,
              "times": [1.0], "values": [4.0], "rollup": {}}
        merged = merge_timeseries([_shard("a", 1.0, {}, timeseries={
            "enabled": True, "interval": 0.25, "capacity": 8,
            "samples": 1, "evictions": 2, "series": [s1]})])
        assert merged["series"][0] == s1


class TestLedgerMerge:
    ROW = {"kind": "vc", "key": "vc1", "note": "", "units_sent": 2,
           "units_delivered": 2, "cells_sent": 10, "cells_delivered": 10,
           "bytes_sent": 480, "bytes_delivered": 480, "drops": 0,
           "residency_seconds": 0.5}

    def test_exact_merge_sums_fields_and_recomputes_share(self):
        a = {"enabled": True, "kinds": {"vc": [dict(self.ROW)]}}
        b = {"enabled": True, "kinds": {"vc": [dict(self.ROW)]}}
        merged = merge_ledger(
            [_shard("a", 2.0, {}, accounting=a),
             _shard("b", 2.0, {}, accounting=b)], sim_time=2.0)
        row = merged["kinds"]["vc"][0]
        assert row["cells_sent"] == 20
        assert row["bytes_sent"] == 960
        assert row["share"] == 1.0
        assert row["bits_per_sec"] == 960 * 8 / 2.0
        assert "top_k" not in merged and "weight" not in row

    def test_sketch_merge_propagates_error_for_absent_entities(self):
        # shard a evicted in kind vc (its min kept weight bounds what
        # any absent entity may have accumulated there)
        ra = dict(self.ROW, weight=100.0, error=2.0)
        rb = dict(self.ROW, key="vc2", weight=50.0, error=0.0)
        a = {"enabled": True, "top_k": 2, "evictions": {"vc": 3},
             "kinds": {"vc": [ra]}}
        b = {"enabled": True, "top_k": 2, "evictions": {},
             "kinds": {"vc": [rb]}}
        merged = merge_ledger(
            [_shard("a", 1.0, {}, accounting=a),
             _shard("b", 1.0, {}, accounting=b)], sim_time=1.0)
        rows = {r["key"]: r for r in merged["kinds"]["vc"]}
        # vc1: present in a only; b never evicted, so no extra error
        assert rows["vc1"]["error"] == 2.0
        # vc2: absent from a, which evicted in vc — its min kept
        # weight (100) joins vc2's bound
        assert rows["vc2"]["error"] == 100.0
        assert rows["vc2"]["approx"] is True
        assert merged["top_k"] == 2
        assert merged["evictions"] == {"vc": 3}

    def test_sketch_trim_marks_trimmed_rows_as_evictions(self):
        rows = [dict(self.ROW, key=f"vc{i}", bytes_sent=100 * (i + 1))
                for i in range(4)]
        snap = {"enabled": True, "kinds": {"vc": rows}}
        trimmed = sketch_trim(snap, 2)
        assert len(trimmed["kinds"]["vc"]) == 2
        assert trimmed["evictions"] == {"vc": 2}
        kept = {r["key"] for r in trimmed["kinds"]["vc"]}
        assert kept == {"vc2", "vc3"}  # the heaviest two
        for r in trimmed["kinds"]["vc"]:
            assert r["weight"] == account_weight(r)

    def test_sketch_bound_holds_against_the_exact_ledger(
            self, classroom_mono):
        """|true - estimate| <= error for every kept row, with the
        monolithic exact ledger as ground truth."""
        exact = classroom_mono["accounting"]
        parts = split_shard(classroom_mono, 2)
        for p in parts:
            p["accounting"] = sketch_trim(p["accounting"], 3)
        merged = merge_ledger(parts, sim_time=classroom_mono["sim_time"])
        truth = {(k, r["key"]): account_weight(r)
                 for k, rows in exact["kinds"].items() for r in rows}
        checked = 0
        for kind, rows in merged["kinds"].items():
            for r in rows:
                true_w = truth[(kind, r["key"])]
                assert abs(true_w - r["weight"]) <= r["error"] + 1e-9, \
                    (kind, r["key"])
                checked += 1
        assert checked > 0


class TestSplitRunEquivalence:
    """The PR's correctness anchor: classroom sharded by entity must
    merge back to the monolithic run's canonical snapshot exactly."""

    @pytest.mark.parametrize("n", [2, 3])
    def test_split_merge_equals_monolithic(self, classroom_mono, n):
        mono = merge_archives([classroom_mono], name="mono")
        parts = split_shard(classroom_mono, n)
        merged = merge_archives(parts, name="split")
        assert merged_canonical_form(merged) \
            == merged_canonical_form(mono)

    def test_split_merge_matches_the_live_stores_directly(
            self, classroom_mono):
        merged = merge_archives(split_shard(classroom_mono, 2),
                                name="split")
        assert merged["metrics"] == classroom_mono["metrics"]
        assert merged["accounting"]["kinds"] \
            == classroom_mono["accounting"]["kinds"]
        assert merged["audit"]["checks"] \
            == classroom_mono["audit"]["checks"]
        assert merged["events_run"] == classroom_mono["events_run"]
        assert merged["slo"]["verdict"] in ("ok", "degraded")

    def test_slo_is_rejudged_not_merged(self, classroom_mono):
        """The merged slo block is exactly what the monitor says about
        the merged registry — shard verdicts never vote."""
        from repro.obs.slo import judge_report
        merged = merge_archives(split_shard(classroom_mono, 2),
                                name="split")
        expected = judge_report(
            merged["metrics"],
            watchdog_alerts=merged["watchdog"]["alerts"]
            if "watchdog" in merged else None)
        assert merged["slo"] == expected


class TestLoadShardAndCli:
    @pytest.fixture(scope="class")
    def archives(self, tmp_path_factory):
        """Two quickstart seeds: one streamed sidecar, one monolithic
        dump, merged via the CLI."""
        from repro.obs.export import dump_observability

        out = str(tmp_path_factory.mktemp("merge_cli"))
        run = build("quickstart", accounting=True, seed=11,
                    stream=os.path.join(out, "obs_q11.jsonl"))
        run.run_to_horizon()
        run.mits.sink.close()
        run2 = build("quickstart", accounting=True, seed=22)
        run2.run_to_horizon()
        dump_observability(run2.mits, "q22", out)
        merged_path = os.path.join(out, "merged.json")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "merge",
             os.path.join(out, "obs_q11.jsonl"),
             os.path.join(out, "metrics_q22.json"),
             "-o", merged_path, "--name", "pair"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(_ROOT, "src")})
        assert proc.returncode == 0, proc.stderr
        return out, merged_path, proc.stdout

    def test_load_shard_normalises_both_archive_shapes(self, archives):
        out, _, _ = archives
        s1 = load_shard(os.path.join(out, "obs_q11.jsonl"))
        s2 = load_shard(os.path.join(out, "metrics_q22.json"))
        for s in (s1, s2):
            assert s["metrics"] and s["spans"]
            assert s["accounting"]["kinds"]
            assert s["audit"]["ok"] is True
        # the stream never carries wall clock; the monolithic dump does
        assert s1["overhead"] is None
        assert s2["overhead"] is not None

    def test_cli_merge_reports_the_fold(self, archives):
        _, merged_path, stdout = archives
        assert "merged 2 shard(s)" in stdout
        with open(merged_path) as fh:
            merged = json.load(fh)
        assert merged["merged"] is True
        assert len(merged["shards"]) == 2
        assert merged["slo"]["verdict"] in ("ok", "degraded")

    def test_remerging_a_merged_archive_keeps_gauge_provenance(
            self, archives):
        out, merged_path, _ = archives
        reshard = load_shard(merged_path)
        assert reshard["gauge_provenance"]
        again = merge_archives([reshard], name="again")
        assert again["metrics"] == reshard["metrics"]

    @pytest.mark.parametrize("command", [
        ("report", "--top", "3"),
        ("top", "--limit", "3"),
        ("critical", "--top", "3"),
        ("audit",),
        ("dashboard",),
        ("slo",),
    ])
    def test_every_renderer_accepts_the_merged_archive(
            self, archives, command):
        _, merged_path, _ = archives
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", command[0],
             merged_path, *command[1:]],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(_ROOT, "src")})
        assert proc.returncode == 0, (command, proc.stderr)
        assert proc.stdout.strip()

    def test_diff_accepts_merged_archives_and_finds_no_self_delta(
            self, archives):
        _, merged_path, _ = archives
        from repro.obs.diff import diff_runs, load_run
        payload = diff_runs(load_run(merged_path),
                            load_run(merged_path))
        assert payload["deterministic_delta_count"] == 0

    def test_write_merged_is_stable_json(self, archives, tmp_path):
        _, merged_path, _ = archives
        shard = load_shard(merged_path)
        m1 = merge_archives([shard], name="w")
        p1 = write_merged(m1, str(tmp_path / "a.json"))
        p2 = write_merged(merge_archives([shard], name="w"),
                          str(tmp_path / "b.json"))
        with open(p1) as f1, open(p2) as f2:
            assert f1.read() == f2.read()
