"""Tests for the anomaly watchdog (repro.obs.watchdog)."""

from types import SimpleNamespace

from repro.atm.simulator import Simulator
from repro.obs.slo import SloMonitor
from repro.obs.watchdog import DEFAULT_DETECTORS, Watchdog


def _fake_link(label="a->sw0", queued=0, transmitted=0, drops=0):
    stats = SimpleNamespace(transmitted=transmitted,
                            dropped_overflow=drops, dropped_errors=0,
                            dropped_down=0)
    return SimpleNamespace(_label=label, queue_length=queued, stats=stats)


def _fake_player(name="p1", received=0, first_arrival=None,
                 stall_started=None, buffer=(), finished=False):
    return SimpleNamespace(
        name=name, finished=finished, _first_arrival=first_arrival,
        _stall_started=stall_started, _buffer=dict.fromkeys(buffer),
        _next_frame=0, stats=SimpleNamespace(frames_received=received))


def _network(*links):
    return SimpleNamespace(links={lk._label: lk for lk in links})


class TestStuckQueue:
    def test_fires_after_window_of_no_progress(self):
        sim = Simulator()
        link = _fake_link(queued=5)
        w = Watchdog(sim, network=_network(link), stuck_window=3)
        for i in range(5):
            w.tick(float(i))
        assert len(w.alerts) == 1
        alert = w.alerts[0]
        assert alert["detector"] == "stuck_queue"
        assert alert["severity"] == "error"
        assert alert["entity"] == "a->sw0"
        assert alert["queued"] == 5

    def test_progress_keeps_it_quiet(self):
        sim = Simulator()
        link = _fake_link(queued=5)
        w = Watchdog(sim, network=_network(link), stuck_window=3)
        for i in range(8):
            link.stats.transmitted += 1  # the queue is draining
            w.tick(float(i))
        assert w.alerts == []

    def test_episode_dedup_and_realert_after_recovery(self):
        sim = Simulator()
        link = _fake_link(queued=5)
        w = Watchdog(sim, network=_network(link), stuck_window=2)
        for i in range(8):
            w.tick(float(i))
        assert len(w.alerts) == 1  # persists, but alerts once
        assert w.active == ["stuck_queue:a->sw0"]
        # recovery: queue drains, episode clears
        link.queue_length = 0
        for i in range(8, 12):
            w.tick(float(i))
        assert w.active == []
        # second episode alerts again
        link.queue_length = 7
        for i in range(12, 18):
            w.tick(float(i))
        assert len(w.alerts) == 2


class TestRisingDropRate:
    def test_fires_on_strictly_climbing_drops(self):
        sim = Simulator()
        link = _fake_link()
        w = Watchdog(sim, network=_network(link), drop_window=3)
        for i in range(6):
            link.stats.dropped_overflow += 2
            link.stats.transmitted += 1  # not stuck, just lossy
            w.tick(float(i))
        kinds = {a["detector"] for a in w.alerts}
        assert kinds == {"rising_drop_rate"}
        assert w.alerts[0]["severity"] == "warning"

    def test_flat_drops_stay_quiet(self):
        sim = Simulator()
        link = _fake_link(drops=100)
        w = Watchdog(sim, network=_network(link), drop_window=3)
        for i in range(6):
            link.stats.transmitted += 1
            w.tick(float(i))
        assert w.alerts == []


class TestSilentStream:
    def test_started_then_silent_stream_fires(self):
        sim = Simulator()
        player = _fake_player(received=10, first_arrival=1.0,
                              stall_started=2.0)
        sim.register_entity("player", player)
        w = Watchdog(sim, silent_window=3, stall_limit=100.0)
        for i in range(6):
            w.tick(float(i))
        assert any(a["detector"] == "silent_stream" for a in w.alerts)

    def test_never_started_stream_is_ignored(self):
        sim = Simulator()
        sim.register_entity("player", _fake_player(received=0))
        w = Watchdog(sim, silent_window=3)
        for i in range(6):
            w.tick(float(i))
        assert w.alerts == []

    def test_finished_stream_is_ignored(self):
        sim = Simulator()
        sim.register_entity("player", _fake_player(
            received=10, first_arrival=1.0, finished=True))
        w = Watchdog(sim, silent_window=3)
        for i in range(6):
            w.tick(float(i))
        assert w.alerts == []


class TestClockStall:
    def test_fires_past_the_stall_limit(self):
        sim = Simulator()
        sim.register_entity("player", _fake_player(
            received=5, first_arrival=0.0, stall_started=0.0,
            buffer=(3, 4)))
        w = Watchdog(sim, stall_limit=2.0, silent_window=99)
        w.tick(1.0)
        assert w.alerts == []  # stalled only 1 s
        w.tick(3.0)
        stalls = [a for a in w.alerts if a["detector"] == "clock_stall"]
        assert len(stalls) == 1
        assert stalls[0]["stalled_for"] == 3.0


class TestLedgerDivergence:
    def test_divergence_alerts_once_per_episode(self):
        from repro.obs.accounting import Ledger
        sim = Simulator(ledger=Ledger())
        sim.metrics.counter("vc", "pdus_sent", vc="1").inc(5)
        sim.ledger.account("vc", "1").sent(units=3)
        w = Watchdog(sim)
        for i in range(4):
            w.tick(float(i))
        diverged = [a for a in w.alerts
                    if a["detector"] == "ledger_divergence"]
        assert len(diverged) == 1
        assert diverged[0]["entity"] == "vc:1"


class TestPlumbing:
    def test_alerts_land_in_the_flight_recorder(self):
        sim = Simulator()
        link = _fake_link(queued=5)
        w = Watchdog(sim, network=_network(link), stuck_window=2)
        for i in range(5):
            w.tick(float(i))
        events = sim.recorder.by_kind("stuck_queue")
        assert events
        assert events[0].component == "watchdog"
        assert events[0].severity == "error"

    def test_same_instant_tick_is_ignored(self):
        sim = Simulator()
        link = _fake_link(queued=5)
        w = Watchdog(sim, network=_network(link), stuck_window=2)
        for i in range(3):
            w.tick(float(i))
            w.tick(float(i))  # snapshot() flush re-sample
        # only 3 observations: not enough for a window of 2 + 1... yet
        _, hist = w._link_state["a->sw0"]
        assert len(hist) == 3

    def test_attach_registers_a_sampler_listener(self):
        from repro.obs.timeseries import TelemetrySampler
        sim = Simulator()
        sampler = TelemetrySampler(sim)
        w = Watchdog(sim).attach(sampler)
        assert w.tick in sampler._listeners

    def test_snapshot_shape(self):
        sim = Simulator()
        w = Watchdog(sim)
        snap = w.snapshot()
        assert snap["enabled"]
        assert len(snap["detectors"]) == len(DEFAULT_DETECTORS)
        assert snap["alerts"] == [] and snap["active"] == []


class TestSloEscalation:
    def _clean_report(self):
        from repro.obs.metrics import MetricsRegistry
        reg = MetricsRegistry()
        reg.counter("link", "drops_total", link="l").inc(0)
        return reg.report()

    def test_alerts_demote_ok_to_degraded(self):
        report = self._clean_report()
        monitor = SloMonitor()
        clean = monitor.summary(report, watchdog_alerts=[])
        assert clean["verdict"] == "ok"
        assert clean["watchdog_alerts"] == 0
        alerted = monitor.summary(
            report, watchdog_alerts=[{"detector": "stuck_queue"}])
        assert alerted["verdict"] == "degraded"
        assert alerted["pass"] is True  # degraded, never failed
        assert alerted["watchdog_alerts"] == 1

    def test_default_path_is_unchanged(self):
        summary = SloMonitor().summary(self._clean_report())
        assert summary["verdict"] == "ok"
        assert "watchdog_alerts" not in summary
