"""Tests for the span tracer."""

from repro.atm.simulator import Simulator
from repro.obs import Tracer
from repro.obs.tracing import NULL_SPAN


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tr = Tracer(clock=lambda: 0.0)
        assert tr.span("x") is NULL_SPAN
        assert tr.span("y") is NULL_SPAN
        with tr.span("z", a=1) as sp:
            sp.set(b=2)
        assert tr.spans == []


class TestSpans:
    def test_span_records_simulated_interval(self):
        sim = Simulator()
        tr = Tracer(clock=lambda: sim.now, enabled=True)
        sp = tr.span("download", course="B101")
        sim.schedule(2.5, sp.end)
        sim.run()
        [rec] = tr.spans
        assert rec.name == "download"
        assert rec.start == 0.0
        assert rec.end == 2.5
        assert rec.duration == 2.5
        assert rec.attrs == {"course": "B101"}

    def test_nesting_assigns_parents(self):
        t = [0.0]
        tr = Tracer(clock=lambda: t[0], enabled=True)
        with tr.span("outer") as outer:
            t[0] = 1.0
            with tr.span("inner"):
                t[0] = 2.0
        inner_rec, outer_rec = tr.spans
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer.span_id
        assert outer_rec.parent_id is None

    def test_context_manager_records_error(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        try:
            with tr.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        [rec] = tr.spans
        assert rec.attrs["error"] == "ValueError"

    def test_double_end_is_idempotent(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        sp = tr.span("once")
        sp.end()
        sp.end()
        assert len(tr.spans) == 1

    def test_bounded_with_drop_count(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True, max_spans=10)
        for i in range(25):
            tr.span(f"s{i}").end()
        assert len(tr.spans) == 10
        assert tr.dropped == 15

    def test_report_aggregates_by_name(self):
        t = [0.0]
        tr = Tracer(clock=lambda: t[0], enabled=True)
        for dur in (1.0, 3.0):
            sp = tr.span("load")
            t[0] += dur
            sp.end()
        rep = tr.report()
        assert rep["aggregate"]["load"]["count"] == 2
        assert rep["aggregate"]["load"]["total"] == 4.0
        assert rep["aggregate"]["load"]["max"] == 3.0


class TestSimulatorIntegration:
    def test_simulator_owns_a_tracer(self):
        sim = Simulator()
        assert sim.tracer.enabled is False
        sim.tracer.enabled = True
        sp = sim.tracer.span("tick")
        sim.schedule(1.0, sp.end)
        sim.run()
        assert sim.tracer.by_name("tick")[0].duration == 1.0
