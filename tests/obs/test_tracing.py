"""Tests for the span tracer."""

from repro.atm.simulator import Simulator
from repro.obs import TraceContext, Tracer
from repro.obs.tracing import NULL_SPAN


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tr = Tracer(clock=lambda: 0.0)
        assert tr.span("x") is NULL_SPAN
        assert tr.span("y") is NULL_SPAN
        with tr.span("z", a=1) as sp:
            sp.set(b=2)
        assert tr.spans == []


class TestSpans:
    def test_span_records_simulated_interval(self):
        sim = Simulator()
        tr = Tracer(clock=lambda: sim.now, enabled=True)
        sp = tr.span("download", course="B101")
        sim.schedule(2.5, sp.end)
        sim.run()
        [rec] = tr.spans
        assert rec.name == "download"
        assert rec.start == 0.0
        assert rec.end == 2.5
        assert rec.duration == 2.5
        assert rec.attrs == {"course": "B101"}

    def test_nesting_assigns_parents(self):
        t = [0.0]
        tr = Tracer(clock=lambda: t[0], enabled=True)
        with tr.span("outer") as outer:
            t[0] = 1.0
            with tr.span("inner"):
                t[0] = 2.0
        inner_rec, outer_rec = tr.spans
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer.span_id
        assert outer_rec.parent_id is None

    def test_context_manager_records_error(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        try:
            with tr.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        [rec] = tr.spans
        assert rec.attrs["error"] == "ValueError"

    def test_double_end_is_idempotent(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        sp = tr.span("once")
        sp.end()
        sp.end()
        assert len(tr.spans) == 1

    def test_bounded_with_drop_count(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True, max_spans=10)
        for i in range(25):
            tr.span(f"s{i}").end()
        assert len(tr.spans) == 10
        assert tr.dropped == 15

    def test_report_aggregates_by_name(self):
        t = [0.0]
        tr = Tracer(clock=lambda: t[0], enabled=True)
        for dur in (1.0, 3.0):
            sp = tr.span("load")
            t[0] += dur
            sp.end()
        rep = tr.report()
        assert rep["aggregate"]["load"]["count"] == 2
        assert rep["aggregate"]["load"]["total"] == 4.0
        assert rep["aggregate"]["load"]["max"] == 3.0


class TestTraceContext:
    def test_disabled_span_carries_no_context(self):
        tr = Tracer(clock=lambda: 0.0)
        assert tr.span("x").context is None

    def test_roots_mint_distinct_trace_ids(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        a, b = tr.span("a"), tr.span("b")
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_children_inherit_the_trace_id(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        with tr.span("root") as root:
            child = tr.span("child")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_explicit_parent_beats_ambient_context(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        other = tr.span("other")
        with tr.span("ambient"):
            by_span = tr.span("a", parent=other)
            by_ctx = tr.span("b", parent=other.context)
        assert by_span.parent_id == other.span_id
        assert by_span.trace_id == other.trace_id
        assert by_ctx.parent_id == other.span_id

    def test_attach_token_restores_displaced_context(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        first = TraceContext(trace_id=7, span_id=1)
        second = TraceContext(trace_id=7, span_id=2)
        assert tr.current is None
        token1 = tr.attach(first)
        token2 = tr.attach(second)
        assert tr.current is second
        tr.detach(token2)
        assert tr.current is first
        tr.detach(token1)
        assert tr.current is None

    def test_bare_span_leaves_ambient_context_untouched(self):
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        with tr.span("root") as root:
            sp = tr.span("bare")
            assert tr.current == root.context
            sp.end()
            assert tr.current == root.context


class TestInterleavedCallbacks:
    def test_interleaved_closes_keep_correct_parents(self):
        """Regression: spans opened by interleaved simulator callbacks
        must all parent to the ambient root, regardless of the order in
        which they end.  The old stack-based tracer re-parented later
        spans onto whichever unfinished span happened to sit on top."""
        tr = Tracer(clock=lambda: 0.0, enabled=True)
        with tr.span("root") as root:
            a = tr.span("cb-a")       # callback A starts work
            b = tr.span("cb-b")       # callback B starts before A ends
            a.end()                   # A finishes first
            c = tr.span("cb-c")       # C opens after the out-of-order end
            b.end()
            c.end()
        recs = {r.name: r for r in tr.spans}
        for name in ("cb-a", "cb-b", "cb-c"):
            assert recs[name].parent_id == root.span_id, name
            assert recs[name].trace_id == root.trace_id, name

    def test_resumed_context_parents_across_a_gap(self):
        """A callback scheduled for later re-attaches the issuing
        context, so work done there joins the original trace."""
        sim = Simulator()
        tr = sim.tracer
        tr.enabled = True
        with tr.span("request") as req:
            saved = req.context

        def later():
            token = tr.attach(saved)
            try:
                tr.span("continuation").end()
            finally:
                tr.detach(token)

        sim.schedule(1.0, later)
        # an unrelated root span opened in between must not capture it
        with tr.span("unrelated"):
            pass
        sim.run()
        [cont] = tr.by_name("continuation")
        assert cont.trace_id == req.trace_id
        assert cont.parent_id == req.span_id


class TestAggregates:
    def test_aggregate_has_quantiles_and_mean(self):
        t = [0.0]
        tr = Tracer(clock=lambda: t[0], enabled=True)
        for dur in (1.0, 2.0, 3.0, 4.0):
            sp = tr.span("load")
            t[0] += dur
            sp.end()
        agg = tr.aggregate()["load"]
        assert agg["count"] == 4
        assert agg["min"] == 1.0
        assert agg["max"] == 4.0
        assert agg["mean"] == 2.5
        assert agg["p50"] == 2.0
        assert agg["p99"] == 4.0

    def test_single_sample_quantiles(self):
        t = [0.0]
        tr = Tracer(clock=lambda: t[0], enabled=True)
        sp = tr.span("one")
        t[0] = 0.5
        sp.end()
        agg = tr.aggregate()["one"]
        assert agg["p50"] == agg["p99"] == agg["min"] == agg["max"] == 0.5


class TestSimulatorIntegration:
    def test_simulator_owns_a_tracer(self):
        sim = Simulator()
        assert sim.tracer.enabled is False
        sim.tracer.enabled = True
        sp = sim.tracer.span("tick")
        sim.schedule(1.0, sp.end)
        sim.run()
        assert sim.tracer.by_name("tick")[0].duration == 1.0
