"""Fleet runner (scripts/fleet.py): parallel shards, one merged view,
per-shard wall/RSS/overhead attribution riding outside the obs stream."""

import importlib.util
import json
import os
import sys

import pytest

_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def _load_fleet():
    spec = importlib.util.spec_from_file_location(
        "fleet", os.path.join(_ROOT, "scripts", "fleet.py"))
    module = importlib.util.module_from_spec(spec)
    # registered so the fork-pool can pickle run_shard by module name
    sys.modules["fleet"] = module
    spec.loader.exec_module(module)
    return module


fleet = _load_fleet()


class TestShardSpecs:
    def test_single_scenario_fans_out_with_derived_seeds(self):
        specs = fleet.shard_specs(["classroom"], 3, 2024, "/tmp/x")
        assert [s["seed"] for s in specs] \
            == [2024000, 2024001, 2024002]
        assert [s["name"] for s in specs] \
            == ["classroom_s0", "classroom_s1", "classroom_s2"]

    def test_explicit_scenarios_run_one_shard_each(self):
        specs = fleet.shard_specs(["quickstart", "classroom"], 4,
                                  1996, "/tmp/x")
        assert [(s["scenario"], s["seed"]) for s in specs] \
            == [("quickstart", 1996000), ("classroom", 1996001)]


class TestFleetRun:
    @pytest.fixture(scope="class")
    def merged(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("fleet"))
        result = fleet.run_fleet(["quickstart"], shards=2, seed=7,
                                 procs=2, out_dir=out)
        result.pop("_path")
        return out, result

    def test_two_shards_merge_into_one_clean_view(self, merged):
        _, result = merged
        assert result["merged"] is True
        assert len(result["shards"]) == 2
        assert result["audit"]["violations"] == []
        assert result["slo"]["pass"] is True
        assert result["events_run"] > 0

    def test_wall_and_rss_attribution_rides_the_pool_not_the_stream(
            self, merged):
        out, result = merged
        for s in result["shards"]:
            assert s["wall_seconds"] > 0
            assert s["peak_rss_kb"] > 0
            assert s["obs_overhead_pct"] is not None
        # the streamed sidecars themselves must stay wall-clock-free
        for name in os.listdir(out):
            if name.startswith("obs_") and name.endswith(".jsonl"):
                with open(os.path.join(out, name)) as fh:
                    text = fh.read()
                assert "obs_overhead_pct" not in text
                assert '"wall_seconds"' not in text
                assert '"peak_rss_kb"' not in text

    def test_fleet_archive_round_trips_through_load_shard(self, merged):
        out, result = merged
        from repro.obs.merge import load_shard, merge_archives
        path = os.path.join(out, "fleet_quickstart.json")
        assert os.path.exists(path)
        reshard = load_shard(path)
        again = merge_archives([reshard], name="again")
        assert again["metrics"] == result["metrics"]

    def test_render_fleet_mentions_every_shard(self, merged):
        _, result = merged
        text = fleet.render_fleet(result)
        for s in result["shards"]:
            assert s["name"] in text
        assert "merged audit" in text
        assert "rss" in text.lower()

    def test_fleet_archive_is_deterministic_given_seeds(
            self, merged, tmp_path):
        """Same seeds, fresh processes: the merged deterministic
        content must be byte-identical."""
        out, result = merged
        rerun = fleet.run_fleet(["quickstart"], shards=2, seed=7,
                                procs=2, out_dir=str(tmp_path))
        rerun.pop("_path")
        from repro.obs.merge import merged_canonical_form
        a = json.loads(merged_canonical_form(result))
        b = json.loads(merged_canonical_form(rerun))
        # overhead/wall facts are wall-clock; everything else is seeded
        a.pop("overhead", None)
        b.pop("overhead", None)
        assert a == b


class TestBenchGateRss:
    def test_peak_rss_metric_is_recorded_and_gated_as_wall(self):
        spec = importlib.util.spec_from_file_location(
            "bench_gate", os.path.join(_ROOT, "scripts",
                                       "bench_gate.py"))
        gate = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gate)
        assert ("peak_rss_kb", "up", "wall") in gate.METRIC_SPECS
        assert gate._peak_rss_kb() > 0
        rows = gate.judge(
            "quickstart",
            {"metrics": {"peak_rss_kb": 100_000}},
            {"metrics": {"peak_rss_kb": 100_000, "events_run": 1,
                         "sim_time": 1.0}},
            tolerance=0.05, wall_tolerance=0.5, no_wall=False)
        rss = [r for r in rows if r[0] == "peak_rss_kb"]
        assert rss and rss[0][4] == "ok"
        # --no-wall (CI) skips it: runner hardware varies
        rows = gate.judge(
            "quickstart", {"metrics": {}},
            {"metrics": {"peak_rss_kb": 1}},
            tolerance=0.05, wall_tolerance=0.5, no_wall=True)
        assert not [r for r in rows if r[0] == "peak_rss_kb"]


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
