"""Streaming obs sidecars (repro.obs.sink): streamed-vs-monolithic
render parity, same-seed byte-identical sampled streams, bounded
obs memory under a sampling policy, and overhead self-metering."""

import json
import os

import pytest

from repro.core.scenarios import build
from repro.obs.accounting import load_accounting_file, render_top
from repro.obs.dashboard import load_timeseries_file, render_dashboard
from repro.obs.export import dump_observability
from repro.obs.report import (
    load_metrics_file, load_trace_file, render_metrics_summary,
    render_overhead, render_slo_table, render_traces,
)
from repro.obs.sampling import SamplingPolicy, scaled_policy
from repro.obs.sink import ObsSink, is_obs_sidecar, load_obs_sidecar
from repro.obs.slo import SloMonitor


@pytest.fixture(scope="module")
def streamed(tmp_path_factory):
    """One quickstart run streamed to a sidecar AND dumped monolithic."""
    out = str(tmp_path_factory.mktemp("stream"))
    obs_path = os.path.join(out, "obs_par.jsonl")
    run = build("quickstart", tracing=True, accounting=True,
                stream=obs_path)
    run.run_to_horizon()
    written = dump_observability(run.mits, "par", out)
    return run.mits, out, obs_path, written


class TestSinkMechanics:
    def test_sink_closed_by_dump_and_listed_first(self, streamed):
        mits, _, obs_path, written = streamed
        assert mits.sink.closed
        assert written[0] == obs_path

    def test_stream_is_a_recognised_sidecar(self, streamed):
        _, out, obs_path, _ = streamed
        assert is_obs_sidecar(obs_path)
        assert not is_obs_sidecar(os.path.join(out, "trace_par.jsonl"))
        assert not is_obs_sidecar(os.path.join(out, "metrics_par.json"))

    def test_record_grammar(self, streamed):
        _, _, obs_path, _ = streamed
        with open(obs_path) as fh:
            lines = [json.loads(x) for x in fh if x.strip()]
        assert lines[0]["record"] == "meta"
        assert lines[0]["version"] == 1
        assert lines[-1]["record"] == "fin"
        tags = {x["record"] for x in lines}
        assert tags >= {"meta", "span", "event", "telemetry", "ledger",
                        "fin"}

    def test_counters_and_closed_sink_refuses_writes(self, streamed):
        mits, _, obs_path, _ = streamed
        rep = mits.sink.report()
        assert rep["records"] > 0
        assert rep["bytes_written"] == os.path.getsize(obs_path)
        assert rep["flushes"] >= 1
        with pytest.raises(ValueError):
            mits.sink.emit({"record": "late"})

    def test_bounded_buffer_flushes_mid_run(self, tmp_path):
        sink = ObsSink(str(tmp_path / "obs_b.jsonl"), buffer_records=2)
        sink.emit({"record": "meta", "version": 1})
        assert sink.flushes == 0
        sink.emit({"record": "event"})
        assert sink.flushes == 1  # buffer filled -> flushed
        sink.close()

    def test_no_wall_clock_leaks_into_the_stream(self, streamed):
        # the stream must stay seed-deterministic: wall-clock overhead
        # readings belong to metrics_*.json only
        _, _, obs_path, _ = streamed
        text = open(obs_path).read()
        assert "obs_overhead_pct" not in text
        assert '"overhead"' not in text


class TestStreamedRenderParity:
    def test_metrics_summary(self, streamed):
        _, out, obs_path, _ = streamed
        loaded = load_obs_sidecar(obs_path)
        _, mono = load_metrics_file(os.path.join(out, "metrics_par.json"))
        assert render_metrics_summary(loaded["meta"]["metrics"]) \
            == render_metrics_summary(mono)

    def test_slo_table(self, streamed):
        _, out, obs_path, _ = streamed
        loaded = load_obs_sidecar(obs_path)
        _, mono = load_metrics_file(os.path.join(out, "metrics_par.json"))
        monitor = SloMonitor()
        assert render_slo_table(monitor.evaluate(
            loaded["meta"]["metrics"])) \
            == render_slo_table(monitor.evaluate(mono))

    def test_traces(self, streamed):
        _, out, obs_path, _ = streamed
        loaded = load_obs_sidecar(obs_path)
        spans, events = load_trace_file(os.path.join(out,
                                                    "trace_par.jsonl"))
        assert render_traces(loaded["spans"], loaded["events"], top=5) \
            == render_traces(spans, events, top=5)

    def test_dashboard(self, streamed):
        _, out, obs_path, _ = streamed
        loaded = load_obs_sidecar(obs_path)
        mono = load_timeseries_file(os.path.join(out,
                                                 "timeseries_par.json"))
        assert render_dashboard(loaded["timeseries"], width=40, top=5,
                                title="x") \
            == render_dashboard(mono, width=40, top=5, title="x")

    def test_top(self, streamed):
        _, out, obs_path, _ = streamed
        loaded = load_obs_sidecar(obs_path)
        mono = load_accounting_file(os.path.join(out,
                                                 "accounting_par.json"))
        for sort in ("bytes", "drops", "residency"):
            assert render_top(loaded["accounting"], sort=sort,
                              title="x") \
                == render_top(mono, sort=sort, title="x")


class TestSampledStreamDeterminism:
    def _run(self, path):
        # same sink *name* for both paths: the name is embedded in the
        # meta/fin records, the directory must not be
        sink = ObsSink(path, name="det")
        run = build("quickstart", tracing=True, accounting=True,
                    sampling=scaled_policy(0.5, reservoir=64, top_k=8),
                    stream=sink)
        run.run_to_horizon()
        run.mits.sink.close()
        return path

    def test_same_seed_same_policy_byte_identical(self, tmp_path):
        a = self._run(str(tmp_path / "a" / "obs_det.jsonl"))
        b = self._run(str(tmp_path / "b" / "obs_det.jsonl"))
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_policy_recorded_in_meta(self, tmp_path):
        path = self._run(str(tmp_path / "obs_det.jsonl"))
        loaded = load_obs_sidecar(path)
        assert loaded["policy"]["trace_sample_rate"] == 0.5
        assert loaded["policy"]["ledger_top_k"] == 8


class TestBoundedMemoryAtScale:
    @pytest.fixture(scope="class")
    def scaled(self):
        policy = SamplingPolicy(trace_sample_rate=0.1,
                                span_reservoir=512,
                                event_reservoir=512,
                                telemetry_coalesce=True,
                                ledger_top_k=32)
        run = build("classroom", tracing=True, accounting=True,
                    sampling=policy)
        run.run_to_horizon()
        return run.mits

    def test_span_store_is_reservoir_bounded(self, scaled):
        tracer = scaled.sim.tracer
        assert len(tracer.spans) <= 512
        assert tracer.sampled_out > 0  # 90% of traces head-sampled out

    def test_event_overflow_is_reservoir_bounded(self, scaled):
        rec = scaled.sim.recorder
        assert len(rec.events) <= rec._events.maxlen
        assert len(rec.overflow) <= 512

    def test_accounts_bounded_per_kind(self, scaled):
        ledger = scaled.sim.ledger
        assert ledger.kinds()  # accounting actually ran
        for kind in ledger.kinds():
            assert len(ledger.accounts(kind)) <= 32

    def test_telemetry_rings_bounded(self, scaled):
        sampler = scaled.sampler
        for series in sampler.series():
            assert len(series) <= sampler.capacity


class TestDefaultPathUnchanged:
    def test_no_policy_installs_no_sampling_machinery(self):
        run = build("quickstart", tracing=True, accounting=True)
        run.run_to_horizon()
        mits = run.mits
        assert mits.sim.tracer._reservoir is None
        assert mits.sim.tracer.sampled_out == 0
        assert "overflow" not in mits.sim.recorder.snapshot()
        snap = mits.sampler.snapshot()
        assert "stride" not in snap and "coalesced" not in snap
        ledger_snap = mits.sim.ledger.snapshot(sim_time=mits.sim.now)
        assert "top_k" not in ledger_snap

    def test_meter_never_leaks_into_the_snapshot(self):
        on = build("quickstart")
        on.run_to_horizon()
        off = build("quickstart", meter=False)
        off.run_to_horizon()
        assert json.dumps(on.mits.snapshot(), sort_keys=True) \
            == json.dumps(off.mits.snapshot(), sort_keys=True)


class TestOverheadMetering:
    def test_dump_carries_the_attribution_table(self, streamed):
        mits, out, _, _ = streamed
        dump = json.loads(open(os.path.join(out,
                                            "metrics_par.json")).read())
        overhead = dump["overhead"]
        assert overhead["obs_overhead_pct"] >= 0.0
        assert overhead["obs_bytes"] > 0  # the sink wrote real bytes
        for component in ("tracer", "sampler", "sink"):
            assert overhead["components"][component]["calls"] > 0

    def test_render_overhead(self, streamed):
        mits, _, _, _ = streamed
        text = render_overhead(mits.meter.report())
        assert "observability overhead" in text
        assert "sink" in text

    def test_meter_off_costs_nothing_anywhere(self):
        run = build("quickstart", meter=False)
        run.run_to_horizon()
        assert run.mits.meter is None
        assert run.mits.sim.tracer.meter is None
