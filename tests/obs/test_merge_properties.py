"""Property-based tests: merge operators are a commutative monoid.

Hypothesis drives arbitrary registries and ledgers through
``repro.obs.merge`` and asserts the algebra the fleet runner leans on:

* **commutativity** — ``merge(a, b) == merge(b, a)``;
* **associativity** — ``merge(merge(a, b), c) == merge(a, merge(b, c))``
  for the content stores (metrics, ledger), grouped via re-merge of
  the merged archive;
* **identity** — merging with an empty shard changes nothing;
* **sketch error bounds** — the space-saving merge's propagated error
  is a true bound (``|exact - estimate| <= error``) and is monotone:
  a merged row's error is never smaller than any input shard's error
  for it.

Values are integer-valued floats so float addition is exact and
associative — the properties under test are the operators', not IEEE
rounding's.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs.accounting import ACCOUNT_SUM_FIELDS, account_weight
from repro.obs.merge import (
    merge_archives,
    merge_ledger,
    merge_metrics,
    merged_canonical_form,
    sketch_trim,
)

# -- strategies -------------------------------------------------------------

_names = st.sampled_from(["alpha", "beta", "gamma"])
_components = st.sampled_from(["link", "player", "rpc"])
_labels = st.dictionaries(st.sampled_from(["vc", "site", "stream"]),
                          st.sampled_from(["a", "b", "c"]), max_size=2)
_ints = st.integers(min_value=0, max_value=10_000)


@st.composite
def counters(draw):
    return {"labels": draw(_labels), "type": "counter",
            "value": draw(_ints)}


@st.composite
def gauges(draw):
    lo = draw(st.integers(min_value=-100, max_value=100))
    hi = draw(st.integers(min_value=lo, max_value=200))
    return {"labels": draw(_labels), "type": "gauge",
            "value": draw(st.integers(min_value=lo, max_value=hi)),
            "min": lo, "max": hi}


@st.composite
def histograms(draw):
    bounds = sorted(draw(st.sets(
        st.sampled_from([1.0, 4.0, 16.0, 64.0]), min_size=1)))
    buckets = [{"le": le, "count": draw(_ints)} for le in bounds]
    buckets = [b for b in buckets if b["count"]]
    count = sum(b["count"] for b in buckets)
    overflow = draw(st.integers(min_value=0, max_value=3))
    mx = (max(b["le"] for b in buckets) if buckets else None)
    return {"labels": draw(_labels), "type": "histogram",
            "count": count + overflow,
            "sum": float(count * 2 + overflow * 100),
            "mean": 0.0, "min": 1.0 if count + overflow else None,
            "max": (100.0 if overflow else mx),
            "buckets": buckets, "overflow": overflow,
            "p50": 0.0, "p99": 0.0}


#: every shard runs the same code, so a metric name determines its
#: instrument kind fleet-wide — without this a registries() pair could
#: present a kind conflict, which merge_metrics rejects by design
_KIND_OF = {"alpha": counters, "beta": gauges, "gamma": histograms}


@st.composite
def registries(draw):
    """Like a real registry: one instrument kind per metric name, one
    entry per label set."""
    report = {}
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        component = draw(_components)
        name = draw(_names)
        rows = report.setdefault(component, {}).setdefault(name, [])
        entry = draw(_KIND_OF[name]())
        key = tuple(sorted(entry["labels"].items()))
        if all(tuple(sorted(r["labels"].items())) != key
               for r in rows):
            rows.append(entry)
    return report


@st.composite
def accounts(draw, key):
    row = {"kind": "vc", "key": key, "note": ""}
    for f in ACCOUNT_SUM_FIELDS:
        row[f] = (draw(_ints) if f != "residency_seconds"
                  else float(draw(_ints)))
    return row


@st.composite
def ledgers(draw):
    keys = draw(st.sets(st.sampled_from(
        ["vc1", "vc2", "vc3", "vc4"]), max_size=4))
    rows = [draw(accounts(k)) for k in sorted(keys)]
    return {"enabled": True, "kinds": {"vc": rows} if rows else {}}


def shard(name, sim_time, *, metrics=None, accounting=None):
    return {"name": name, "path": f"<prop:{name}>",
            "sim_time": sim_time, "events_run": 0,
            "metrics": metrics or {}, "spans": [], "events": [],
            "timeseries": None, "accounting": accounting,
            "watchdog": None, "audit": None, "telemetry": None,
            "overhead": None}


EMPTY = shard("empty", 0.0)


def canon(payload):
    return json.dumps(payload, sort_keys=True, default=repr)


# -- registry properties ----------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(a=registries(), b=registries(),
       ta=st.floats(min_value=0, max_value=100, allow_nan=False),
       tb=st.floats(min_value=0, max_value=100, allow_nan=False))
def test_metrics_merge_commutes(a, b, ta, tb):
    fwd = merge_metrics([shard("a", ta, metrics=a),
                         shard("b", tb, metrics=b)])
    rev = merge_metrics([shard("b", tb, metrics=b),
                         shard("a", ta, metrics=a)])
    assert canon(fwd) == canon(rev)


@settings(max_examples=60, deadline=None)
@given(a=registries(), b=registries(), c=registries())
def test_metrics_merge_is_associative_via_remerge(a, b, c):
    sa, sb, sc = (shard("a", 1.0, metrics=a),
                  shard("b", 2.0, metrics=b),
                  shard("c", 3.0, metrics=c))

    def as_shard(name, shards):
        merged = merge_archives(shards, name=name)
        return {**shard(name, merged["sim_time"],
                        metrics=merged["metrics"]),
                "events_run": merged["events_run"],
                "gauge_provenance":
                    merged["provenance"]["gauges"]}

    lhs = merge_archives([as_shard("ab", [sa, sb]), dict(sc)],
                         name="x")
    rhs = merge_archives([dict(sa), as_shard("bc", [sb, sc])],
                         name="x")
    assert canon(lhs["metrics"]) == canon(rhs["metrics"])


@settings(max_examples=60, deadline=None)
@given(a=registries(),
       t=st.floats(min_value=0.1, max_value=100, allow_nan=False))
def test_metrics_merge_identity(a, t):
    alone = merge_metrics([shard("a", t, metrics=a)])
    padded = merge_metrics([shard("a", t, metrics=a), dict(EMPTY)])
    assert canon(alone) == canon(padded)


# -- ledger properties ------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(a=ledgers(), b=ledgers())
def test_ledger_merge_commutes(a, b):
    fwd = merge_ledger([shard("a", 1.0, accounting=a),
                        shard("b", 1.0, accounting=b)], sim_time=1.0)
    rev = merge_ledger([shard("b", 1.0, accounting=b),
                        shard("a", 1.0, accounting=a)], sim_time=1.0)
    assert canon(fwd) == canon(rev)


@settings(max_examples=60, deadline=None)
@given(a=ledgers(), b=ledgers(), c=ledgers())
def test_exact_ledger_merge_is_associative(a, b, c):
    sa, sb, sc = (shard("a", 1.0, accounting=a),
                  shard("b", 1.0, accounting=b),
                  shard("c", 1.0, accounting=c))
    ab = merge_ledger([sa, sb], sim_time=1.0)
    bc = merge_ledger([sb, sc], sim_time=1.0)
    lhs = merge_ledger([shard("ab", 1.0, accounting=ab), dict(sc)],
                       sim_time=1.0)
    rhs = merge_ledger([dict(sa), shard("bc", 1.0, accounting=bc)],
                       sim_time=1.0)
    assert canon(lhs) == canon(rhs)


@settings(max_examples=60, deadline=None)
@given(a=ledgers())
def test_ledger_merge_identity(a):
    alone = merge_ledger([shard("a", 1.0, accounting=a)], sim_time=1.0)
    padded = merge_ledger(
        [shard("a", 1.0, accounting=a),
         shard("empty", 0.0,
               accounting={"enabled": True, "kinds": {}})],
        sim_time=1.0)
    assert canon(alone) == canon(padded)


@settings(max_examples=60, deadline=None)
@given(a=ledgers(), b=ledgers(),
       k=st.integers(min_value=1, max_value=3))
def test_sketch_error_bound_holds_and_is_monotone(a, b, k):
    """The documented contract: |exact - estimate| <= error for every
    kept row, and merging never shrinks a shard's error for a row."""
    exact = merge_ledger([shard("a", 1.0, accounting=a),
                          shard("b", 1.0, accounting=b)], sim_time=1.0)
    sk_a = sketch_trim(a, k) if a["kinds"] else a
    sk_b = sketch_trim(b, k) if b["kinds"] else b
    merged = merge_ledger([shard("a", 1.0, accounting=sk_a),
                           shard("b", 1.0, accounting=sk_b)],
                          sim_time=1.0)
    if merged is None:
        return
    truth = {(kind, r["key"]): account_weight(r)
             for kind, rows in (exact or {"kinds": {}})["kinds"].items()
             for r in rows}
    shard_errors = {}
    for sk in (sk_a, sk_b):
        for kind, rows in (sk.get("kinds") or {}).items():
            for r in rows:
                key = (kind, r["key"])
                shard_errors[key] = max(shard_errors.get(key, 0.0),
                                        r.get("error", 0.0))
    for kind, rows in merged["kinds"].items():
        for r in rows:
            assert abs(truth[(kind, r["key"])] - r["weight"]) \
                <= r["error"] + 1e-9
            # monotone: merging never shrinks a shard's own bound
            assert r["error"] >= shard_errors.get((kind, r["key"]),
                                                  0.0) - 1e-9


@settings(max_examples=60, deadline=None)
@given(a=ledgers(), k=st.integers(min_value=1, max_value=4))
def test_sketch_trim_weights_rank_truthfully(a, k):
    """Trimming keeps the heaviest rows and never invents weight."""
    if not a["kinds"]:
        return
    trimmed = sketch_trim(a, k)
    kept = trimmed["kinds"]["vc"]
    dropped = [r for r in a["kinds"]["vc"]
               if r["key"] not in {x["key"] for x in kept}]
    if kept and dropped:
        min_kept = min(account_weight(r) for r in kept)
        assert all(account_weight(r) <= min_kept + 1e-9
                   for r in dropped)


# -- whole-archive properties ----------------------------------------------


@settings(max_examples=30, deadline=None)
@given(a=registries(), b=registries(), la=ledgers(), lb=ledgers())
def test_archive_merge_commutes_end_to_end(a, b, la, lb):
    sa = shard("a", 1.0, metrics=a, accounting=la)
    sb = shard("b", 2.0, metrics=b, accounting=lb)
    fwd = merge_archives([sa, sb], name="x")
    rev = merge_archives([sb, sa], name="x")
    assert merged_canonical_form(fwd) == merged_canonical_form(rev)
    assert canon(fwd["shards"]) == canon(rev["shards"])


@settings(max_examples=30, deadline=None)
@given(a=registries(), la=ledgers())
def test_archive_merge_identity_with_empty_shard(a, la):
    sa = shard("a", 1.0, metrics=a, accounting=la)
    alone = merge_archives([dict(sa)], name="x")
    padded = merge_archives([dict(sa), dict(EMPTY)], name="x")
    assert canon(alone["metrics"]) == canon(padded["metrics"])
    assert canon(alone.get("accounting")) \
        == canon(padded.get("accounting"))
    assert alone["slo"] == padded["slo"]
