"""Tests for the per-entity accounting ledger (repro.obs.accounting)."""

import json

import pytest

from repro.obs.accounting import (
    Account, Ledger, NULL_ACCOUNT, load_accounting_file, render_top,
)


class TestAccount:
    def test_totals_accumulate(self):
        acct = Account("vc", "7", note="a->b")
        acct.sent(units=2, cells=10, nbytes=480)
        acct.sent(units=1, cells=5, nbytes=240)
        acct.delivered(units=3, cells=15, nbytes=720)
        acct.drop()
        acct.drop(cells=4)
        acct.dwell(0.5)
        assert acct.units_sent == 3
        assert acct.cells_sent == 15
        assert acct.bytes_sent == 720
        assert acct.units_delivered == 3
        assert acct.drops == 5
        assert acct.residency_seconds == 0.5

    def test_to_dict_is_json_stable(self):
        acct = Account("site", "user1")
        acct.sent(units=1, nbytes=100)
        row = acct.to_dict()
        assert json.loads(json.dumps(row)) == row
        assert row["kind"] == "site" and row["key"] == "user1"


class TestLedger:
    def test_accounts_memoised_by_kind_and_key(self):
        ledger = Ledger()
        a = ledger.account("vc", "1", note="x->y")
        b = ledger.account("vc", "1")
        c = ledger.account("site", "1")
        assert a is b
        assert a is not c
        assert a.note == "x->y"  # first note wins

    def test_disabled_ledger_hands_out_the_null_account(self):
        ledger = Ledger(enabled=False)
        acct = ledger.account("vc", "1")
        assert acct is NULL_ACCOUNT
        acct.sent(units=5, cells=5, nbytes=500)
        acct.drop()
        acct.dwell(1.0)
        assert NULL_ACCOUNT.units_sent == 0
        assert NULL_ACCOUNT.drops == 0
        assert NULL_ACCOUNT.residency_seconds == 0.0
        assert ledger.accounts() == []

    def test_snapshot_shares_and_rates(self):
        ledger = Ledger()
        ledger.account("vc", "1").sent(units=1, nbytes=750)
        ledger.account("vc", "2").sent(units=1, nbytes=250)
        snap = ledger.snapshot(sim_time=10.0)
        assert snap["enabled"]
        rows = {r["key"]: r for r in snap["kinds"]["vc"]}
        assert rows["1"]["share"] == pytest.approx(0.75)
        assert rows["2"]["share"] == pytest.approx(0.25)
        assert rows["1"]["bits_per_sec"] == pytest.approx(750 * 8 / 10.0)

    def test_snapshot_without_traffic_has_zero_shares(self):
        ledger = Ledger()
        ledger.account("site", "quiet")
        rows = ledger.snapshot()["kinds"]["site"]
        assert rows[0]["share"] == 0.0

    def test_reconcile_flags_divergence(self):
        from repro.obs.metrics import MetricsRegistry
        ledger = Ledger()
        reg = MetricsRegistry()
        reg.counter("vc", "pdus_sent", vc="1").inc(5)
        ledger.account("vc", "1").sent(units=5)
        assert ledger.reconcile(reg) == []
        ledger.account("vc", "1").sent(units=2)  # now 7 vs 5
        div = ledger.reconcile(reg)
        assert len(div) == 1
        assert div[0]["kind"] == "vc" and div[0]["key"] == "1"
        assert div[0]["ledger"] == 7 and div[0]["registry"] == 5

    def test_reconcile_disabled_is_empty(self):
        from repro.obs.metrics import MetricsRegistry
        assert Ledger(enabled=False).reconcile(MetricsRegistry()) == []


class TestRenderTop:
    def _payload(self):
        ledger = Ledger()
        ledger.account("vc", "1", note="db->user1").sent(
            units=10, cells=50, nbytes=2000)
        ledger.account("vc", "2").sent(units=1, cells=5, nbytes=200)
        ledger.account("stream", "classroom-user1").delivered(
            units=8, nbytes=1600)
        return ledger.snapshot(sim_time=5.0)

    def test_renders_every_kind_with_headers(self):
        out = render_top(self._payload())
        assert "-- vc (2) --" in out
        assert "-- stream (1) --" in out
        assert "1 (db->user1)" in out

    def test_kind_filter_and_limit(self):
        out = render_top(self._payload(), kind="vc", limit=1)
        assert "-- stream" not in out
        assert "1 more" in out

    def test_sort_by_drops(self):
        payload = self._payload()
        out = render_top(payload, sort="drops")
        assert out  # valid column accepted
        with pytest.raises(ValueError):
            render_top(payload, sort="favourite-colour")

    def test_disabled_payload_renders_hint(self):
        out = render_top({"enabled": False, "kinds": {}})
        assert "accounting disabled" in out


class TestLoadAccountingFile:
    def test_round_trip(self, tmp_path):
        ledger = Ledger()
        ledger.account("vc", "1").sent(units=1, nbytes=100)
        path = tmp_path / "accounting_x.json"
        path.write_text(json.dumps(ledger.snapshot()))
        data = load_accounting_file(path)
        assert data["kinds"]["vc"][0]["key"] == "1"

    def test_rejects_non_accounting_json(self, tmp_path):
        path = tmp_path / "metrics_x.json"
        path.write_text(json.dumps({"metrics": {}}))
        with pytest.raises(ValueError):
            load_accounting_file(path)
