"""Tests for the ``python -m repro.obs`` reporting CLI."""

import json

from repro.obs.__main__ import main
from repro.obs.report import (
    find_trace_sidecar, load_metrics_file, load_trace_file,
    render_trace_tree,
)


def write_metrics(path, p99=0.05, wrapped=True):
    report = {
        "connection": {"rtt_seconds": [
            {"type": "histogram", "count": 12, "sum": 0.3,
             "mean": 0.025, "min": 0.01, "max": p99, "p50": 0.02,
             "p99": p99}]},
        "link": {
            "drops_total": [{"type": "counter", "value": 0}],
            "cells_transmitted": [{"type": "counter", "value": 5000}]},
    }
    payload = {"name": "demo", "sim_time": 4.0, "events_run": 99,
               "metrics": report} if wrapped else report
    path.write_text(json.dumps(payload))
    return path


def write_trace(path):
    spans = [
        {"span_id": 1, "parent_id": None, "trace_id": 1,
         "name": "navigator.enter_classroom", "start": 0.0, "end": 1.0,
         "duration": 1.0, "attrs": {}},
        {"span_id": 2, "parent_id": 1, "trace_id": 1,
         "name": "rpc.client:get_doc", "start": 0.1, "end": 0.6,
         "duration": 0.5, "attrs": {}},
        {"span_id": 3, "parent_id": 2, "trace_id": 1,
         "name": "rpc.server:get_doc", "start": 0.3, "end": 0.3,
         "duration": 0.0, "attrs": {}},
    ]
    events = [
        {"time": 0.2, "component": "transport", "kind": "retransmit",
         "severity": "warning", "trace_id": 1, "attrs": {"seq": 4}},
    ]
    with open(path, "w") as fh:
        for s in spans:
            fh.write(json.dumps({"record": "span", **s}) + "\n")
        for e in events:
            fh.write(json.dumps({"record": "event", **e}) + "\n")
    return path


class TestLoading:
    def test_load_metrics_unwraps_benchmark_dump(self, tmp_path):
        path = write_metrics(tmp_path / "metrics_demo.json")
        meta, report = load_metrics_file(str(path))
        assert meta["name"] == "demo"
        assert "connection" in report

    def test_load_metrics_accepts_bare_report(self, tmp_path):
        path = write_metrics(tmp_path / "bare.json", wrapped=False)
        meta, report = load_metrics_file(str(path))
        assert meta == {}
        assert "connection" in report

    def test_trace_lines_classified_by_kind(self, tmp_path):
        path = write_trace(tmp_path / "trace_demo.jsonl")
        spans, events = load_trace_file(str(path))
        assert len(spans) == 3
        assert len(events) == 1

    def test_sidecar_discovery(self, tmp_path):
        metrics = write_metrics(tmp_path / "metrics_demo.json")
        assert find_trace_sidecar(str(metrics)) is None
        trace = write_trace(tmp_path / "trace_demo.jsonl")
        assert find_trace_sidecar(str(metrics)) == str(trace)


class TestReportCommand:
    def test_report_prints_summary_slos_and_waterfall(self, tmp_path,
                                                      capsys):
        metrics = write_metrics(tmp_path / "metrics_demo.json")
        write_trace(tmp_path / "trace_demo.jsonl")
        assert main(["report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "== scenario: demo ==" in out
        assert "connection.rtt_seconds" in out
        assert "rpc-rtt-p99" in out
        assert "PASS" in out
        assert "all SLOs met" in out
        # waterfall: tree indentation plus bar characters
        assert "navigator.enter_classroom" in out
        assert "  rpc.client:get_doc" in out
        assert "|" in out and "#" in out
        assert "! warning: transport.retransmit" in out
        assert "top 3 slow spans" in out

    def test_strict_mode_fails_on_violation(self, tmp_path, capsys):
        good = write_metrics(tmp_path / "metrics_ok.json")
        bad = write_metrics(tmp_path / "metrics_bad.json", p99=2.0)
        assert main(["report", str(good), "--strict"]) == 0
        assert main(["report", str(bad), "--strict"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_explicit_trace_flag(self, tmp_path, capsys):
        metrics = write_metrics(tmp_path / "m.json")
        trace = write_trace(tmp_path / "t.jsonl")
        assert main(["report", str(metrics),
                     "--trace", str(trace)]) == 0
        assert "rpc.server:get_doc" in capsys.readouterr().out


class TestSloCommand:
    def test_exit_code_reflects_verdict(self, tmp_path, capsys):
        good = write_metrics(tmp_path / "metrics_ok.json")
        bad = write_metrics(tmp_path / "metrics_bad.json", p99=9.0)
        assert main(["slo", str(good)]) == 0
        assert main(["slo", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SLO VIOLATIONS PRESENT" in out

    def test_skipped_objectives_render_distinctly(self, tmp_path, capsys):
        metrics = write_metrics(tmp_path / "metrics_ok.json")
        assert main(["slo", str(metrics)]) == 0
        assert "SKIP (no data)" in capsys.readouterr().out


class TestTraceCommand:
    def test_waterfall_only(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "trace_demo.jsonl")
        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace 1 · 3 spans" in out
        assert "slow spans" in out


class TestRenderers:
    def test_zero_duration_span_still_gets_a_bar(self):
        spans = [{"span_id": 1, "parent_id": None, "trace_id": 1,
                  "name": "instant", "start": 1.0, "end": 1.0,
                  "attrs": {}}]
        out = render_trace_tree(spans)
        assert "#" in out

    def test_dangling_parent_becomes_a_root(self):
        spans = [{"span_id": 5, "parent_id": 99, "trace_id": 1,
                  "name": "orphan", "start": 0.0, "end": 1.0,
                  "attrs": {}}]
        out = render_trace_tree(spans)
        assert out.startswith("orphan")


class TestTopCommand:
    def _write_accounting(self, path):
        payload = {
            "name": "demo", "enabled": True,
            "kinds": {"vc": [
                {"kind": "vc", "key": "1", "note": "a->b",
                 "units_sent": 4, "units_delivered": 4,
                 "cells_sent": 20, "cells_delivered": 20,
                 "bytes_sent": 960, "bytes_delivered": 960,
                 "drops": 0, "residency_seconds": 0.0, "share": 1.0}]},
        }
        path.write_text(json.dumps(payload))
        return path

    def test_archived_top_renders_tables(self, tmp_path, capsys):
        path = self._write_accounting(tmp_path / "accounting_demo.json")
        assert main(["top", str(path)]) == 0
        out = capsys.readouterr().out
        assert "-- vc (1) --" in out
        assert "1 (a->b)" in out

    def test_top_without_source_is_usage_error(self, capsys):
        assert main(["top"]) == 2
        assert "accounting_*.json" in capsys.readouterr().err

    def test_bad_sort_column_rejected_by_argparse(self, tmp_path):
        path = self._write_accounting(tmp_path / "accounting_demo.json")
        import pytest
        with pytest.raises(SystemExit):
            main(["top", str(path), "--sort", "colour"])
