"""Determinism under injection: same plan + seed => identical runs.

The whole point of a *seeded* adversary is that any chaotic failure
is replayable.  These tests hold the strongest form of that claim:
two independent builds of the faulty scenario produce byte-identical
``snapshot()`` JSON — every metric, every FlightRecorder event, every
fault correlation.
"""

import json

from repro.core.scenarios import build
from repro.faults import FaultPlan, RandomFaults
from repro.faults.plan import resolve_plan

from tests.faults.conftest import run_course, single_fault


def _snapshot_json(run) -> str:
    return json.dumps(run.mits.snapshot(), sort_keys=True)


class TestDeterminism:
    def test_faulty_classroom_snapshot_is_byte_identical(self):
        first = build("faulty-classroom")
        first.run_to_horizon()
        second = build("faulty-classroom")
        second.run_to_horizon()
        assert json.dumps(first.mits.snapshot(), sort_keys=True) \
            == json.dumps(second.mits.snapshot(), sort_keys=True)

    def test_single_fault_run_is_byte_identical(self):
        plan = single_fault("burst_loss", "sw0->user1",
                            at=6.0, duration=1.5, rate=0.05)
        a = run_course(plan)
        b = run_course(plan)
        assert _snapshot_json(a) == _snapshot_json(b)

    def test_fault_seed_changes_the_run(self):
        # a different plan seed re-seeds the burst-loss RNG, so the
        # set of lost cells — and everything downstream — differs
        plan = single_fault("burst_loss", "sw0->user1",
                            at=6.0, duration=1.5, rate=0.05)
        a = run_course(plan, fault_seed=1)
        b = run_course(plan, fault_seed=2)
        pa = a.mits.network.links[("sw0", "user1")].stats.dropped_errors
        pb = b.mits.network.links[("sw0", "user1")].stats.dropped_errors
        # both runs lost cells; identical loss *patterns* would make
        # the seeds indistinguishable, which the snapshots rule out
        assert pa > 0 and pb > 0
        assert _snapshot_json(a) != _snapshot_json(b)


class TestPlanResolution:
    def test_random_faults_expand_deterministically(self):
        plan = FaultPlan(name="p", seed=9, random_faults=[
            RandomFaults(kinds=("link_down", "burst_loss"),
                         targets=("sw0->user1", "user1->sw0"),
                         window=(1.0, 10.0), count=5)])
        assert plan.resolve() == plan.resolve()
        assert len(plan.resolve()) == 5
        assert [f.at for f in plan.resolve()] \
            == sorted(f.at for f in plan.resolve())

    def test_named_plans_resolve(self):
        plan = resolve_plan("classroom-chaos")
        assert plan.name == "classroom-chaos"
        kinds = {f.kind for f in plan.resolve()}
        # the flagship plan exercises every fault kind
        assert kinds == {"link_down", "burst_loss", "jitter",
                         "switch_crash", "vc_teardown",
                         "server_stall", "server_slow"}
