"""Chaos coverage for the cell-train fast path.

The batched event loop must not merely survive fault plans — it must
experience them *identically* to the per-cell loop it replaced.  For
each canned plan (the full ``classroom-chaos`` mix and the
``link-flaps`` random outage storm) the Course-On-Demand flow runs
under both fidelities and the test asserts:

* zero conservation violations under batching (``run_course`` already
  asserts this on exit for every run it returns);
* identical fault fingerprints: the FlightRecorder's injected/cleared
  event sequence — times, fault kinds, targets, ids — matches the
  per-cell run exactly, so batching neither reorders nor swallows an
  injection;
* identical damage: SLO verdict, per-layer drop totals, retransmit and
  recovery counters all agree, because the horizon rule expands any
  batch a fault window touches back into exact per-cell semantics.
"""

from repro.faults import PLANS

from tests.faults.conftest import run_course


def _fingerprints(run, kind):
    return [(e.time, e.attrs.get("fault"), e.attrs.get("target"),
             e.attrs.get("fault_id"))
            for e in run.recorder.by_kind(kind)
            if e.component == "faults"]


def _both_fidelities(plan_name, **kwargs):
    return (run_course(PLANS[plan_name](), fidelity="cell", **kwargs),
            run_course(PLANS[plan_name](), fidelity="batched", **kwargs))


class TestChaosFidelity:
    def test_classroom_chaos_fingerprints_match_per_cell(self):
        cell, batched = _both_fidelities("classroom-chaos")
        assert _fingerprints(batched, "injected") \
            == _fingerprints(cell, "injected")
        assert _fingerprints(batched, "cleared") \
            == _fingerprints(cell, "cleared")
        assert batched.audit() == []
        # same damage, same verdict — not merely "both degraded"
        for component, name in (("link", "drops_total"),
                                ("connection", "retransmits"),
                                ("rpc", "retries"),
                                ("player", "frames_concealed")):
            assert batched.metric_total(component, name) \
                == cell.metric_total(component, name), (component, name)
        assert batched.mits.snapshot()["slo"]["verdict"] \
            == cell.mits.snapshot()["slo"]["verdict"]

    def test_link_flaps_fingerprints_match_per_cell(self):
        cell, batched = _both_fidelities("link-flaps")
        assert _fingerprints(batched, "injected") \
            == _fingerprints(cell, "injected")
        assert batched.audit() == []
        assert batched.metric_total("link", "drops_total") \
            == cell.metric_total("link", "drops_total")
        assert batched.metric_total("connection", "retransmits") \
            == cell.metric_total("connection", "retransmits")
        assert batched.mits.snapshot()["slo"]["verdict"] \
            == cell.mits.snapshot()["slo"]["verdict"]

    def test_chaos_plans_really_bite(self):
        """Guard against vacuous equality: both plans must actually
        drop cells under batching, proving the fast path carried the
        traffic straight through the fault windows."""
        for plan_name in ("classroom-chaos", "link-flaps"):
            run = run_course(PLANS[plan_name](), fidelity="batched")
            assert run.metric_total("link", "drops_total") > 0, plan_name
