"""Shared harness for the chaos suite.

``run_course`` drives the full Course-On-Demand flow (publish a
course, enroll a student, enter the classroom, stream the intro
video) under a given fault plan and recovery policy, returning every
handle a test needs to assert both halves: that the fault really
happened, and that the system recovered (possibly degraded).
"""

import os
from dataclasses import dataclass
from typing import List, Optional

import pytest

from repro.core.scenarios import _enroll, _publish_course, _stream_video
from repro.core.system import MitsSystem
from repro.faults import FaultInjector, FaultPlan, RESILIENT, RecoveryPolicy
from repro.obs.audit import ConservationAuditor
from repro.streaming import VideoPlayer

#: the default chaos seed; CI exports CHAOS_SEED so a failure log
#: always names the seed to reproduce with
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "42"))


@dataclass
class ChaosRun:
    mits: MitsSystem
    player: VideoPlayer
    injector: FaultInjector
    #: results/errors of the post-fault control-plane queries
    results: List
    errors: List

    @property
    def recorder(self):
        return self.mits.sim.recorder

    def metric_total(self, component: str, name: str) -> float:
        report = self.mits.sim.metrics.report()
        return sum(e["value"]
                   for e in report.get(component, {}).get(name, []))

    def audit(self):
        """Conservation violations at the current instant (empty = clean)."""
        return ConservationAuditor(self.mits).check()


def run_course(plan: FaultPlan, *,
               recovery: RecoveryPolicy = RESILIENT,
               fault_seed: Optional[int] = None,
               query_times=(10.5, 12.0, 14.5),
               horizon: float = 40.0,
               fidelity: str = "batched") -> ChaosRun:
    mits = MitsSystem(topology="star", tracing=True, recovery=recovery,
                      fidelity=fidelity)
    _publish_course(mits)
    nav = _enroll(mits, "user1", "Chaos Student")
    nav.enter_classroom("D101", "dash-101")
    player = _stream_video(mits, "user1")
    injector = FaultInjector(plan, seed=fault_seed).attach(mits)
    mits.injector = injector
    results: List = []
    errors: List = []
    user = mits.users["user1"]
    for at in query_times:
        mits.sim.schedule(
            max(0.0, at - mits.sim.now),
            lambda: user.client.list_courses(
                on_result=results.append, on_error=errors.append))
    mits.sim.run(until=mits.sim.now + horizon)
    run = ChaosRun(mits=mits, player=player, injector=injector,
                   results=results, errors=errors)
    # the headline invariant of the chaos suite: whatever the fault
    # plan did, every layer's counters still balance at the end
    violations = run.audit()
    assert violations == [], \
        f"conservation violations after {plan.name}: " \
        + "; ".join(str(v) for v in violations)
    return run


def single_fault(kind: str, target: str, at: float = 6.0,
                 **extra) -> FaultPlan:
    from repro.faults.plan import FaultSpec
    return FaultPlan(name=f"one-{kind}", seed=CHAOS_SEED,
                     faults=[FaultSpec(at=at, kind=kind, target=target,
                                       **extra)])


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Stamp failing chaos tests with the seed to reproduce locally."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        report.sections.append(
            ("chaos", f"reproduce with fault seed {CHAOS_SEED} "
                      f"(CHAOS_SEED env overrides in CI)"))
