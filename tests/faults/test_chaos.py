"""Chaos suite: one scenario test per fault kind.

Each test injects one fault into the Course-On-Demand flow and
asserts (a) the fault demonstrably happened, (b) the flow still
completed — possibly degraded — and (c) the recovery machinery left
its fingerprints in metrics and the FlightRecorder.  A final pair of
tests proves that when recovery is exhausted the failure surfaces as
a structured error through ``on_error``, never as an exception out of
the simulator loop.
"""

import pytest

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.topology import star_campus
from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy, RESILIENT
from repro.faults.injector import FaultError
from repro.faults.plan import FaultSpec
from repro.transport.connection import connect_pair
from repro.transport.rpc import RpcClient, RpcError, RpcServer, SharedProcessor
from repro.util.errors import NetworkError

from tests.faults.conftest import run_course, single_fault


def _faults_recorded(run, kind):
    events = [e for e in run.recorder.by_kind("injected")
              if e.component == "faults" and e.attrs["fault"] == kind]
    assert events, f"no FlightRecorder entry for injected {kind}"
    assert all(e.attrs["fault_id"] >= 1 for e in events)
    return events


class TestLinkDown:
    def test_arq_rides_out_an_outage(self):
        run = run_course(single_fault("link_down", "user1->sw0",
                                      at=10.0, duration=0.2),
                         query_times=(10.05,))
        _faults_recorded(run, "link_down")
        link = run.mits.network.links[("user1", "sw0")]
        assert link.stats.dropped_down > 0
        assert not link.down  # cleared on schedule
        # the query issued mid-outage still completed: go-back-N
        # retransmitted what the dead link ate
        assert len(run.results) == 1 and not run.errors
        assert run.metric_total("connection", "retransmits") > 0
        assert run.recorder.by_kind("cleared")


class TestBurstLoss:
    def test_playout_survives_cell_loss(self):
        run = run_course(single_fault("burst_loss", "sw0->user1",
                                      at=6.0, duration=1.5, rate=0.05))
        _faults_recorded(run, "burst_loss")
        link = run.mits.network.links[("sw0", "user1")]
        assert link.stats.dropped_errors > 0
        assert link.error_rate == 0.0  # restored after the burst
        player = run.player
        # the stream finished; lost frames were concealed or skipped,
        # not silently corrupted
        assert player.finished
        assert player.stats.frames_played > 0
        lost = player.stats.frames_concealed + player.stats.frames_skipped
        assert lost > 0
        assert run.metric_total("player", "frames_concealed") \
            == player.stats.frames_concealed


class TestJitter:
    def test_preroll_absorbs_added_jitter(self):
        run = run_course(single_fault("jitter", "sw0->user1",
                                      at=6.0, duration=2.0, jitter=0.002))
        _faults_recorded(run, "jitter")
        assert run.player.finished
        # all queries fine: jitter delays, it does not destroy
        assert len(run.results) == 3 and not run.errors


class TestSwitchCrash:
    def test_fabric_blackout_is_retransmitted_through(self):
        run = run_course(single_fault("switch_crash", "sw0",
                                      at=10.0, duration=0.1),
                         query_times=(10.02,))
        _faults_recorded(run, "switch_crash")
        switch = run.mits.network.switches["sw0"]
        assert switch.stats.crash_dropped > 0
        assert not switch.crashed
        assert len(run.results) == 1 and not run.errors
        assert run.metric_total("connection", "retransmits") > 0


class TestVcTeardown:
    def test_connection_reestablishes(self):
        run = run_course(single_fault("vc_teardown", "user1->database",
                                      at=10.0),
                         query_times=(10.5,))
        _faults_recorded(run, "vc_teardown")
        # the control VC died; the auto-reconnect policy re-signalled
        # a replacement and the query completed over it
        assert run.metric_total("connection", "reconnects") >= 1
        assert run.recorder.by_kind("vc_lost")
        assert run.recorder.by_kind("reconnected")
        assert len(run.results) == 1 and not run.errors


class TestServerStall:
    def test_rpc_retries_carry_the_call(self):
        run = run_course(single_fault("server_stall", "database",
                                      at=10.0, duration=3.0),
                         query_times=(10.2,))
        _faults_recorded(run, "server_stall")
        # the stall outlives the 2 s RESILIENT timeout: the first
        # attempt dies, a backed-off retry completes
        assert run.metric_total("rpc", "retries") >= 1
        assert run.recorder.by_kind("retry")
        assert len(run.results) == 1 and not run.errors


class TestServerSlow:
    def test_slowdown_degrades_but_serves(self):
        run = run_course(single_fault("server_slow", "database",
                                      at=10.0, duration=5.0, factor=8.0),
                         query_times=(10.5, 12.0))
        _faults_recorded(run, "server_slow")
        proc = run.mits.database.processor
        assert proc.slowdown == 1.0  # restored
        assert len(run.results) == 2 and not run.errors


class TestVerdicts:
    def test_survived_run_is_judged_degraded_not_failed(self):
        run = run_course(single_fault("server_stall", "database",
                                      at=10.0, duration=3.0),
                         query_times=(10.2,))
        summary = run.mits.snapshot()["slo"]
        assert summary["verdict"] == "degraded"
        assert summary["pass"] is True
        assert summary["degradations"]

    def test_clean_run_is_judged_ok(self):
        run = run_course(FaultPlan(name="empty", seed=1))
        summary = run.mits.snapshot()["slo"]
        assert summary["verdict"] == "ok"
        assert summary["degradations"] == {}


class TestExhaustedRecovery:
    """When recovery runs out, errors are structured — never raised
    out of the event loop."""

    def test_rpc_retries_exhausted_surface_via_on_error(self):
        policy = RecoveryPolicy(rpc_max_retries=2, rpc_timeout=0.5,
                                backoff_base=0.05)
        # a stall far longer than (1 + 2 retries) x 0.5 s + backoff
        run = run_course(single_fault("server_stall", "database",
                                      at=10.0, duration=30.0),
                         recovery=policy, query_times=(10.2,),
                         horizon=60.0)
        assert not run.results
        assert len(run.errors) == 1
        error = run.errors[0]
        assert isinstance(error, RpcError)
        assert "timed out" in str(error)
        assert run.metric_total("rpc", "retries") == 2
        assert run.metric_total("rpc", "retries_exhausted") == 1
        assert run.recorder.by_kind("retries_exhausted")

    def test_reconnect_budget_exhausted_surfaces_via_on_error(self):
        sim = Simulator()
        net, _ = star_campus(sim, ["a", "b"])
        contract = TrafficContract(ServiceCategory.UBR, pcr=366e3)
        ca, cb = connect_pair(sim, net, "a", "b", contract,
                              auto_reconnect=True, max_reconnects=0)
        errors = []
        ca.on_error = errors.append
        from repro.transport.messages import Message, MessageType
        ca.send(Message(type=MessageType.DATA, body=b"hello"))
        sim.run(until=1.0)
        assert not errors  # healthy circuit: nothing to recover from
        for vc in net.vcs_between("a", "b"):
            net.close_vc(vc)
        ca.send(Message(type=MessageType.DATA, body=b"into the void"))
        sim.run(until=5.0)
        assert len(errors) == 1
        assert isinstance(errors[0], NetworkError)
        assert "gave up" in str(errors[0])
        assert ca.closed and ca.last_error is errors[0]


class TestInjectorValidation:
    def test_unknown_link_is_rejected_at_attach(self):
        from repro.core.system import MitsSystem
        mits = MitsSystem(topology="star")
        plan = FaultPlan(name="bad", faults=[
            FaultSpec(at=1.0, kind="link_down", target="nowhere->sw0")])
        with pytest.raises(FaultError):
            FaultInjector(plan).attach(mits)

    def test_unknown_kind_is_rejected_at_spec(self):
        with pytest.raises(ValueError):
            FaultSpec(at=1.0, kind="meteor_strike", target="sw0")


class TestConservation:
    """The headline cross-check: after the full chaos plan, every
    layer's counters balance (``run_course`` asserts this for every
    test in the suite; this one exercises the whole classroom-chaos
    plan and inspects the audit result directly)."""

    def test_full_chaos_plan_conserves_every_layer(self):
        from repro.faults import PLANS
        run = run_course(PLANS["classroom-chaos"](), horizon=40.0)
        violations = run.audit()
        assert violations == []
        # the plan really did something: drops happened and recovery
        # fired, yet the books still balance
        assert run.metric_total("link", "drops_total") > 0

    def test_each_fault_kind_conserves(self):
        plans = [
            single_fault("link_down", "database->sw0", duration=2.0),
            single_fault("burst_loss", "database->sw0", duration=3.0,
                         rate=0.2),
            single_fault("switch_crash", "sw0", duration=1.0),
            single_fault("vc_teardown", "database->user1"),
            single_fault("server_stall", "database", duration=2.0),
        ]
        for plan in plans:
            run = run_course(plan)  # run_course asserts a clean audit
            assert run.audit() == []
