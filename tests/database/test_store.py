"""Tests for the object store and optimistic transactions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.store import ObjectStore
from repro.util.errors import DatabaseError


class TestDirectAccess:
    def test_put_get(self):
        store = ObjectStore()
        store.put("c", "k", {"v": 1})
        assert store.get("c", "k") == {"v": 1}

    def test_missing_raises(self):
        with pytest.raises(DatabaseError):
            ObjectStore().get("c", "k")

    def test_get_or_none(self):
        assert ObjectStore().get_or_none("c", "k") is None

    def test_delete(self):
        store = ObjectStore()
        store.put("c", "k", 1)
        store.delete("c", "k")
        assert not store.exists("c", "k")
        with pytest.raises(DatabaseError):
            store.delete("c", "k")

    def test_keys_sorted(self):
        store = ObjectStore()
        for k in ("b", "a", "c"):
            store.put("c", k, k)
        assert store.keys("c") == ["a", "b", "c"]

    def test_scan(self):
        store = ObjectStore()
        for i in range(5):
            store.put("c", str(i), i)
        assert store.scan("c", lambda v: v % 2 == 0) == [
            ("0", 0), ("2", 2), ("4", 4)]

    def test_collections_isolated(self):
        store = ObjectStore()
        store.put("a", "k", 1)
        assert not store.exists("b", "k")


class TestTransactions:
    def test_commit_applies_writes(self):
        store = ObjectStore()
        tx = store.transaction()
        tx.put("c", "k", 1)
        tx.commit()
        assert store.get("c", "k") == 1

    def test_uncommitted_writes_invisible(self):
        store = ObjectStore()
        tx = store.transaction()
        tx.put("c", "k", 1)
        assert not store.exists("c", "k")

    def test_read_your_own_writes(self):
        store = ObjectStore()
        tx = store.transaction()
        tx.put("c", "k", 1)
        assert tx.get("c", "k") == 1

    def test_abort_discards(self):
        store = ObjectStore()
        tx = store.transaction()
        tx.put("c", "k", 1)
        tx.abort()
        assert not store.exists("c", "k")
        with pytest.raises(DatabaseError):
            tx.commit()

    def test_write_write_conflict_detected(self):
        store = ObjectStore()
        store.put("c", "k", 0)
        t1 = store.transaction()
        t2 = store.transaction()
        t1.put("c", "k", 1)
        t2.put("c", "k", 2)
        t1.commit()
        with pytest.raises(DatabaseError):
            t2.commit()
        assert store.get("c", "k") == 1
        assert store.conflicts == 1

    def test_read_write_conflict_detected(self):
        store = ObjectStore()
        store.put("c", "k", 0)
        t1 = store.transaction()
        assert t1.get("c", "k") == 0
        store.put("c", "k", 99)   # concurrent writer
        t1.put("c", "other", 1)
        with pytest.raises(DatabaseError):
            t1.commit()

    def test_delete_in_transaction(self):
        store = ObjectStore()
        store.put("c", "k", 1)
        tx = store.transaction()
        tx.delete("c", "k")
        with pytest.raises(DatabaseError):
            tx.get("c", "k")
        tx.commit()
        assert not store.exists("c", "k")

    def test_context_manager_commits(self):
        store = ObjectStore()
        with store.transaction() as tx:
            tx.put("c", "k", 5)
        assert store.get("c", "k") == 5

    def test_context_manager_aborts_on_exception(self):
        store = ObjectStore()
        with pytest.raises(RuntimeError):
            with store.transaction() as tx:
                tx.put("c", "k", 5)
                raise RuntimeError("boom")
        assert not store.exists("c", "k")

    def test_finished_transaction_unusable(self):
        store = ObjectStore()
        tx = store.transaction()
        tx.commit()
        with pytest.raises(DatabaseError):
            tx.put("c", "k", 1)

    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.integers(0, 100)), max_size=30))
    @settings(max_examples=30)
    def test_serial_transactions_apply_in_order(self, writes):
        """Property: serially committed transactions behave like direct
        writes applied in order."""
        store = ObjectStore()
        mirror = {}
        for key, value in writes:
            with store.transaction() as tx:
                tx.put("c", key, value)
            mirror[key] = value
        for key, value in mirror.items():
            assert store.get("c", key) == value
