"""Tests for the keyword tree and inverted index."""

import pytest

from repro.database.index import InvertedIndex, KeywordTree
from repro.util.errors import DatabaseError


class TestKeywordTree:
    def test_add_and_contains(self):
        tree = KeywordTree()
        tree.add("networks/atm/cells")
        assert tree.contains("networks")
        assert tree.contains("networks/atm/cells")
        assert not tree.contains("networks/ip")

    def test_subtree_value(self):
        tree = KeywordTree()
        tree.add("networks/atm")
        tree.add("networks/isdn")
        value = tree.subtree("networks")
        assert value["keyword"] == "networks"
        assert [c["keyword"] for c in value["children"]] == ["atm", "isdn"]

    def test_root_subtree(self):
        tree = KeywordTree()
        tree.add("a")
        tree.add("b")
        assert [c["keyword"] for c in tree.subtree()["children"]] == ["a", "b"]

    def test_unknown_path_raises(self):
        with pytest.raises(DatabaseError):
            KeywordTree().subtree("ghost")

    def test_empty_path_rejected(self):
        with pytest.raises(DatabaseError):
            KeywordTree().add("///")

    def test_leaves(self):
        tree = KeywordTree()
        tree.add("networks/atm/cells")
        tree.add("networks/atm/qos")
        tree.add("education")
        assert tree.leaves() == ["education", "networks/atm/cells",
                                 "networks/atm/qos"]


class TestInvertedIndex:
    def test_lookup(self):
        index = InvertedIndex()
        index.add("doc1", ["atm", "cells"])
        index.add("doc2", ["atm", "qos"])
        assert index.lookup("atm") == ["doc1", "doc2"]
        assert index.lookup("qos") == ["doc2"]
        assert index.lookup("none") == []

    def test_case_insensitive(self):
        index = InvertedIndex()
        index.add("doc1", ["ATM"])
        assert index.lookup("atm") == ["doc1"]

    def test_conjunctive_query(self):
        index = InvertedIndex()
        index.add("doc1", ["atm", "cells"])
        index.add("doc2", ["atm"])
        assert index.lookup_all(["atm", "cells"]) == ["doc1"]
        assert index.lookup_all([]) == []

    def test_remove(self):
        index = InvertedIndex()
        index.add("doc1", ["atm"])
        index.remove("doc1")
        assert index.lookup("atm") == []

    def test_blank_keywords_ignored(self):
        index = InvertedIndex()
        index.add("doc1", ["", "  ", "real"])
        assert index.keywords() == ["real"]
