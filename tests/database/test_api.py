"""Tests for the database facade and the networked client/server."""

import pytest

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.topology import star_campus
from repro.database.api import (
    CoursewareDatabase, DatabaseClient, DatabaseServer, wait_for,
)
from repro.database.schema import (
    ContentRecord, CourseRecord, CoursewareRecord, LibraryDocument,
)
from repro.transport.connection import connect_pair
from repro.transport.rpc import RpcClient, RpcServer
from repro.util.errors import DatabaseError


def make_db():
    db = CoursewareDatabase()
    db.store_content(ContentRecord(content_ref="intro-video",
                                   media_kind="video",
                                   coding_method="SMPG",
                                   data=b"V" * 5000))
    db.store_courseware(CoursewareRecord(
        courseware_id="atm-101", title="ATM Networks",
        program="networking", container_blob=b"CONTAINER" * 10,
        keywords=["networks/atm", "broadband"],
        introduction_ref="intro-video"))
    db.add_course(CourseRecord(course_code="ELG5376", name="ATM Networks",
                               program="networking",
                               courseware_id="atm-101"))
    db.add_library_document(LibraryDocument(
        doc_id="lib-1", title="ATM explained", media_kind="video",
        content_ref="intro-video", keywords=["networks/atm"]))
    return db


class TestFacade:
    def test_catalogue_roundtrip(self):
        db = make_db()
        assert db.get_courseware("atm-101").title == "ATM Networks"
        assert db.list_courseware("networking")[0]["courseware_id"] == "atm-101"
        assert db.list_courseware("cooking") == []

    def test_versioning_on_update(self):
        db = make_db()
        db.store_courseware(CoursewareRecord(
            courseware_id="atm-101", title="ATM v2", program="networking",
            container_blob=b"NEW"))
        assert db.get_courseware("atm-101").version == 2

    def test_course_requires_courseware(self):
        db = make_db()
        with pytest.raises(DatabaseError):
            db.add_course(CourseRecord(course_code="X", name="X",
                                       program="p", courseware_id="ghost"))

    def test_student_registration_flow(self):
        db = make_db()
        student = db.register_student("Ada", "1 Loop Rd", "ada@example.org")
        assert student.student_number.startswith("S")
        db.register_for_course(student.student_number, "ELG5376")
        assert db.get_student(student.student_number).registered_courses == \
            ["ELG5376"]
        # idempotent
        db.register_for_course(student.student_number, "ELG5376")
        assert db.get_student(student.student_number) \
            .find_number_of_course() == 1

    def test_register_unknown_course_fails(self):
        db = make_db()
        s = db.register_student("Bob")
        with pytest.raises(DatabaseError):
            db.register_for_course(s.student_number, "GHOST")

    def test_keyword_queries(self):
        db = make_db()
        assert db.docs_by_keyword("broadband") == ["atm-101"]
        assert "networks" in [c["keyword"]
                              for c in db.keyword_tree.subtree()["children"]]

    def test_library_requires_content(self):
        db = make_db()
        with pytest.raises(DatabaseError):
            db.add_library_document(LibraryDocument(
                doc_id="x", title="x", media_kind="text",
                content_ref="missing"))

    def test_statistics(self):
        db = make_db()
        db.register_student("Ada")
        stats = db.statistics()
        assert stats["courseware"] == 1
        assert stats["students"] == 1
        assert stats["content_bytes"] == 5000


def networked_db():
    sim = Simulator()
    net, _ = star_campus(sim, ["navigator", "database"])
    contract = TrafficContract(ServiceCategory.NRT_VBR, pcr=300000,
                               scr=150000, mbs=500)
    cc, cs = connect_pair(sim, net, "navigator", "database", contract)
    db = make_db()
    DatabaseServer(db).attach(RpcServer(sim, cs))
    client = DatabaseClient(RpcClient(sim, cc))
    return sim, client, db


class TestNetworkedAccess:
    def test_get_list_doc(self):
        sim, client, db = networked_db()
        result = wait_for(sim, client.Get_List_Doc())
        assert result == ["atm-101"]

    def test_get_selected_doc_returns_blob(self):
        sim, client, db = networked_db()
        blob = wait_for(sim, client.Get_Selected_Doc("atm-101"))
        assert blob == b"CONTAINER" * 10

    def test_get_selected_doc_unknown_errors(self):
        sim, client, db = networked_db()
        with pytest.raises(Exception) as exc_info:
            wait_for(sim, client.Get_Selected_Doc("ghost"))
        assert "ghost" in str(exc_info.value)

    def test_keyword_apis(self):
        sim, client, db = networked_db()
        tree = wait_for(sim, client.GetKeywordTree())
        assert any(c["keyword"] == "broadband" for c in tree["children"])
        docs = wait_for(sim, client.GetDocByKeyword("broadband"))
        assert docs == ["atm-101"]

    def test_registration_over_network(self):
        sim, client, db = networked_db()
        profile = wait_for(sim, client.register("Ada", "1 Loop Rd"))
        number = profile["student_number"]
        courses = wait_for(sim, client.register_for_course(number, "ELG5376"))
        assert courses == ["ELG5376"]
        student = wait_for(sim, client.get_student(number))
        assert student["registered_courses"] == ["ELG5376"]

    def test_profile_update(self):
        sim, client, db = networked_db()
        profile = wait_for(sim, client.register("Ada"))
        updated = wait_for(sim, client.update_profile(
            profile["student_number"], address="2 New St"))
        assert updated["address"] == "2 New St"

    def test_resume_position_roundtrip(self):
        sim, client, db = networked_db()
        profile = wait_for(sim, client.register("Ada"))
        number = profile["student_number"]
        wait_for(sim, client.save_resume(number, "atm-101", 73.5))
        assert wait_for(sim, client.get_resume(number, "atm-101")) == 73.5
        assert wait_for(sim, client.get_resume(number, "other")) == 0.0

    def test_content_streaming(self):
        sim, client, db = networked_db()
        rx = client.get_content("intro-video")
        sim.run(until=20.0)
        assert rx.finished
        assert rx.data == b"V" * 5000

    def test_library_listing(self):
        sim, client, db = networked_db()
        docs = wait_for(sim, client.list_library())
        assert docs[0]["doc_id"] == "lib-1"
        doc = wait_for(sim, client.get_library_doc("lib-1"))
        assert doc["content_ref"] == "intro-video"

    def test_programs_and_courses(self):
        sim, client, db = networked_db()
        assert wait_for(sim, client.list_programs()) == ["networking"]
        courses = wait_for(sim, client.list_courses("networking"))
        assert courses[0]["course_code"] == "ELG5376"

    def test_statistics_over_network(self):
        sim, client, db = networked_db()
        stats = wait_for(sim, client.statistics())
        assert stats["courses"] == 1
