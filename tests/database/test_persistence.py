"""Tests for database snapshot/restore."""

import pytest

from repro.database.api import CoursewareDatabase
from repro.database.persistence import restore, snapshot
from repro.database.schema import (
    ContentRecord, CourseRecord, CoursewareRecord, LibraryDocument,
)
from repro.util.errors import DatabaseError


def populated_db():
    db = CoursewareDatabase()
    db.store_content(ContentRecord(
        content_ref="vid-1", media_kind="video", coding_method="SMPG",
        data=b"\x00\x01" * 500, attributes={"frame_rate": 10.0}))
    db.store_courseware(CoursewareRecord(
        courseware_id="c1", title="Course One", program="net",
        container_blob=b"BLOB" * 50, keywords=["networks/atm"],
        introduction_ref="vid-1", author="prof"))
    db.store_courseware(CoursewareRecord(   # bump to version 2
        courseware_id="c1", title="Course One v2", program="net",
        container_blob=b"BLOB2" * 50, keywords=["networks/atm"]))
    db.add_course(CourseRecord(course_code="N1", name="Course One",
                               program="net", courseware_id="c1"))
    db.add_library_document(LibraryDocument(
        doc_id="d1", title="Doc", media_kind="video",
        content_ref="vid-1", keywords=["networks/atm"]))
    student = db.register_student("Ada", "1 Loop Rd", "a@e.org")
    db.register_for_course(student.student_number, "N1")
    student.resume_positions["c1"] = 12.5
    student.bookmarks["c1"] = ["net/3"]
    student.scores["ex1"] = 2.0
    db.update_student(student)
    return db, student.student_number


class TestSnapshotRestore:
    def test_statistics_identical(self):
        db, _ = populated_db()
        back = restore(snapshot(db))
        assert back.statistics() == db.statistics()

    def test_records_roundtrip(self):
        db, number = populated_db()
        back = restore(snapshot(db))
        record = back.get_courseware("c1")
        assert record.title == "Course One v2"
        assert record.version == 2
        assert record.container_blob == b"BLOB2" * 50
        assert back.content.get("vid-1").data == b"\x00\x01" * 500
        assert back.get_course("N1").courseware_id == "c1"
        assert back.get_library_document("d1").content_ref == "vid-1"

    def test_student_state_roundtrips(self):
        db, number = populated_db()
        back = restore(snapshot(db))
        student = back.get_student(number)
        assert student.name == "Ada"
        assert student.registered_courses == ["N1"]
        assert student.resume_positions["c1"] == 12.5
        assert student.bookmarks["c1"] == ["net/3"]
        assert student.scores["ex1"] == 2.0

    def test_indexes_rebuilt(self):
        db, _ = populated_db()
        back = restore(snapshot(db))
        assert set(back.docs_by_keyword("networks/atm")) == {"c1", "d1"}
        assert back.keyword_tree.contains("networks/atm")

    def test_student_numbering_continues(self):
        db, number = populated_db()
        back = restore(snapshot(db))
        fresh = back.register_student("Bob")
        assert fresh.student_number != number
        assert int(fresh.student_number[1:]) > int(number[1:])

    def test_snapshot_deterministic(self):
        db, _ = populated_db()
        assert snapshot(db) == snapshot(db)

    def test_bad_magic_rejected(self):
        with pytest.raises(DatabaseError):
            restore(b"XXXX\x00\x00\x00\x00")

    def test_truncation_rejected(self):
        db, _ = populated_db()
        data = snapshot(db)
        with pytest.raises(DatabaseError):
            restore(data[:-10])

    def test_empty_database_roundtrips(self):
        back = restore(snapshot(CoursewareDatabase()))
        assert back.statistics()["courseware"] == 0
