"""Tests for the MPEG-like video codec and streaming wrapper."""

import numpy as np
import pytest

from repro.media.image import psnr
from repro.media.production import MediaProductionCenter
from repro.media.video import VideoCodec, VideoStream
from repro.util.errors import DecodingError, EncodingError


def moving_sequence(T=12, h=32, w=32, seed=0):
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:h, 0:w]
    frames = np.empty((T, h, w), dtype=np.uint8)
    for t in range(T):
        img = 128 + 64 * np.sin((xx + 2 * t) / 5.0) + rng.normal(0, 1, (h, w))
        frames[t] = np.clip(img, 0, 255).astype(np.uint8)
    return frames


class TestVideoCodec:
    def test_roundtrip_shape(self):
        frames = moving_sequence()
        out = VideoCodec().decode(VideoCodec().encode(frames))
        assert out.shape == frames.shape and out.dtype == np.uint8

    def test_reconstruction_quality(self):
        frames = moving_sequence()
        codec = VideoCodec(quality=85, gop=6)
        out = codec.decode(codec.encode(frames))
        for t in range(len(frames)):
            assert psnr(frames[t], out[t]) > 28

    def test_static_sequence_p_frames_tiny(self):
        frames = np.repeat(moving_sequence(T=1), 12, axis=0)
        codec = VideoCodec(quality=60, gop=12)
        stream = VideoStream(codec.encode(frames))
        infos = stream.frame_infos()
        assert infos[0].kind == "I"
        assert all(f.kind == "P" for f in infos[1:])
        # P frames of a static scene are near-empty (EOB-per-block floor)
        assert all(f.size < infos[0].size / 2 for f in infos[1:])
        assert all(f.size < 64 for f in infos[1:])

    def test_gop_structure(self):
        frames = moving_sequence(T=10)
        stream = VideoStream(VideoCodec(gop=4).encode(frames))
        kinds = [f.kind for f in stream.frame_infos()]
        assert kinds == ["I", "P", "P", "P"] * 2 + ["I", "P"]

    def test_input_validation(self):
        codec = VideoCodec()
        with pytest.raises(EncodingError):
            codec.encode(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(EncodingError):
            codec.encode(np.zeros((2, 10, 10), dtype=np.uint8))  # not /8
        with pytest.raises(EncodingError):
            codec.encode(np.zeros((0, 8, 8), dtype=np.uint8))
        with pytest.raises(EncodingError):
            VideoCodec(gop=0)

    def test_rejects_alien_payload(self):
        with pytest.raises(DecodingError):
            VideoCodec().decode(b"NOPEnope")


class TestVideoStream:
    def test_frame_iteration_timestamps(self):
        frames = moving_sequence(T=5)
        stream = VideoStream(VideoCodec(frame_rate=10.0).encode(frames))
        stamps = [ts for ts, _ in stream]
        assert stamps == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_duration(self):
        frames = moving_sequence(T=10)
        stream = VideoStream(VideoCodec(frame_rate=5.0).encode(frames))
        assert stream.duration == pytest.approx(2.0)

    def test_frames_concatenate_to_whole(self):
        frames = moving_sequence(T=6)
        data = VideoCodec().encode(frames)
        stream = VideoStream(data)
        header_len = len(data) - sum(len(stream.frame_bytes(i))
                                     for i in range(stream.frames))
        joined = data[:header_len] + b"".join(
            stream.frame_bytes(i) for i in range(stream.frames))
        assert joined == data

    def test_truncated_stream_rejected(self):
        data = VideoCodec().encode(moving_sequence(T=3))
        with pytest.raises(DecodingError):
            VideoStream(data + b"x")

    def test_burstiness_of_produced_video(self):
        pc = MediaProductionCenter()
        vid = pc.produce_video("clip", seconds=2.0, gop=10)
        stream = VideoStream(vid.data)
        assert stream.peak_to_mean_ratio() > 1.05
