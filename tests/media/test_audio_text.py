"""Tests for audio, MIDI, and text codecs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media.audio import (
    AudioCodec, MidiCodec, MidiEvent, mu_law_compress, mu_law_expand,
)
from repro.media.text import TextCodec, extract_headings, extract_links, strip_markup
from repro.util.errors import DecodingError, EncodingError


def tone(seconds=0.5, rate=8000, freq=440.0, amp=20000):
    t = np.arange(int(seconds * rate)) / rate
    return np.round(amp * np.sin(2 * np.pi * freq * t)).astype(np.int16)


class TestMuLaw:
    def test_roundtrip_snr(self):
        samples = tone()
        back = mu_law_expand(mu_law_compress(samples))
        noise = (samples.astype(float) - back.astype(float))
        snr = 10 * np.log10((samples.astype(float) ** 2).mean()
                            / max((noise ** 2).mean(), 1e-12))
        assert snr > 25  # G.711-ish quality

    def test_silence_stays_quiet(self):
        silence = np.zeros(100, dtype=np.int16)
        back = mu_law_expand(mu_law_compress(silence))
        assert np.abs(back).max() < 300

    def test_dtype_enforced(self):
        with pytest.raises(EncodingError):
            mu_law_compress(np.zeros(4, dtype=np.float64))
        with pytest.raises(DecodingError):
            mu_law_expand(np.zeros(4, dtype=np.int16))

    @given(st.integers(-32768, 32767))
    def test_monotone(self, x):
        """Companding preserves sign and approximate ordering."""
        a = mu_law_compress(np.array([x], dtype=np.int16))[0]
        b = mu_law_compress(np.array([min(32767, x + 2000)], dtype=np.int16))[0]
        assert b >= a


class TestAudioCodec:
    def test_ulaw_roundtrip_half_size(self):
        samples = tone(seconds=1.0)
        ulaw = AudioCodec(companding="ulaw").encode(samples)
        linear = AudioCodec(companding="linear").encode(samples)
        assert len(ulaw) < len(linear) * 0.55
        assert len(AudioCodec().decode(ulaw)) == len(samples)

    def test_linear_roundtrip_exact(self):
        samples = tone()
        back = AudioCodec(companding="linear").decode(
            AudioCodec(companding="linear").encode(samples))
        assert np.array_equal(back, samples)

    def test_bad_companding(self):
        with pytest.raises(EncodingError):
            AudioCodec(companding="alaw")

    def test_input_validation(self):
        with pytest.raises(EncodingError):
            AudioCodec().encode(np.zeros((2, 2), dtype=np.int16))

    def test_truncation_detected(self):
        data = AudioCodec().encode(tone())
        with pytest.raises(DecodingError):
            AudioCodec().decode(data[:-5])


class TestMidi:
    def test_roundtrip(self):
        events = [MidiEvent(0.0, 0.5, 60, 100), MidiEvent(0.5, 0.25, 64, 90)]
        back = MidiCodec().decode(MidiCodec().encode(events))
        assert back == events

    def test_events_sorted_on_encode(self):
        events = [MidiEvent(1.0, 0.5, 60, 100), MidiEvent(0.0, 0.5, 64, 90)]
        back = MidiCodec().decode(MidiCodec().encode(events))
        assert back[0].time == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MidiEvent(0.0, 0.5, 200, 100)
        with pytest.raises(ValueError):
            MidiEvent(0.0, 0.0, 60, 100)
        with pytest.raises(ValueError):
            MidiEvent(-1.0, 0.5, 60, 100)

    def test_render_produces_audio(self):
        events = [MidiEvent(0.0, 0.5, 69, 127)]  # A440
        pcm = MidiCodec.render(events, sample_rate=8000)
        assert len(pcm) >= 4000
        assert np.abs(pcm).max() > 10000

    def test_render_empty(self):
        assert len(MidiCodec.render([])) == 0

    def test_size_independent_of_duration(self):
        short = MidiCodec().encode([MidiEvent(0.0, 0.1, 60, 64)])
        long = MidiCodec().encode([MidiEvent(0.0, 3600.0, 60, 64)])
        assert len(short) == len(long)


class TestText:
    def test_roundtrip_unicode(self):
        text = "== Début ==\nvoilà [[atm-course|le cours ATM]] 中文"
        assert TextCodec().decode(TextCodec().encode(text)) == text

    def test_extract_links(self):
        text = "see [[a|first]] and [[b-c|second link]]"
        assert extract_links(text) == [("a", "first"), ("b-c", "second link")]

    def test_extract_headings(self):
        text = "== One ==\nbody\n== Two ==\nmore"
        assert extract_headings(text) == ["One", "Two"]

    def test_strip_markup(self):
        text = "== Title ==\ngo [[target|here]] now"
        plain = strip_markup(text)
        assert "[[" not in plain and "==" not in plain
        assert "here" in plain and "Title" in plain

    def test_truncation_detected(self):
        data = TextCodec().encode("hello world")
        with pytest.raises(DecodingError):
            TextCodec().decode(data[:-2])
