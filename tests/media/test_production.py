"""Tests for the media production center."""

import numpy as np
import pytest

from repro.media import (
    AudioCodec, MediaProductionCenter, MediaType, MidiCodec, TextCodec,
    VideoCodec, VideoStream,
)
from repro.media.image import ImageCodec
from repro.media.text import extract_headings, extract_links


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = MediaProductionCenter(seed=7).produce_video("x", seconds=0.5)
        b = MediaProductionCenter(seed=7).produce_video("x", seconds=0.5)
        assert a.data == b.data

    def test_different_seed_different_bytes(self):
        a = MediaProductionCenter(seed=1).produce_video("x", seconds=0.5)
        b = MediaProductionCenter(seed=2).produce_video("x", seconds=0.5)
        assert a.data != b.data

    def test_different_names_different_content(self):
        pc = MediaProductionCenter()
        assert pc.produce_image("a").data != pc.produce_image("b").data


class TestProducedAssets:
    def test_video_decodable_with_advertised_attributes(self):
        pc = MediaProductionCenter()
        obj = pc.produce_video("clip", seconds=1.0, width=64, height=48,
                               frame_rate=10.0)
        frames = VideoCodec().decode(obj.data)
        assert frames.shape == (10, 48, 64)
        assert obj.duration == pytest.approx(1.0)
        assert obj.is_continuous
        assert obj.bitrate_bps() > 0

    def test_image_decodable(self):
        pc = MediaProductionCenter()
        obj = pc.produce_image("card", width=80, height=64)
        img = ImageCodec().decode(obj.data)
        assert img.shape == (64, 80)
        assert obj.media_type is MediaType.IMAGE
        assert not obj.is_continuous

    def test_audio_decodable(self):
        pc = MediaProductionCenter()
        obj = pc.produce_audio("speech", seconds=0.5)
        samples = AudioCodec().decode(obj.data)
        assert len(samples) == 4000
        assert obj.duration == pytest.approx(0.5)

    def test_midi_decodable(self):
        pc = MediaProductionCenter()
        obj = pc.produce_midi("melody", bars=2)
        events = MidiCodec().decode(obj.data)
        assert len(events) == 8
        assert obj.duration > 0

    def test_text_has_structure_and_links(self):
        pc = MediaProductionCenter()
        obj = pc.produce_text("lecture", sections=4,
                              link_targets=["atm-cells", "atm-qos"])
        text = TextCodec().decode(obj.data)
        assert len(extract_headings(text)) == 4
        targets = {t for t, _ in extract_links(text)}
        assert targets <= {"atm-cells", "atm-qos"}

    def test_catalog_accumulates(self):
        pc = MediaProductionCenter()
        pc.produce_image("a")
        pc.produce_text("b")
        assert set(pc.catalog) == {"a", "b"}

    def test_describe_includes_basics(self):
        pc = MediaProductionCenter()
        desc = pc.produce_video("v", seconds=0.5).describe()
        assert desc["media_type"] == "video"
        assert desc["size"] > 0
        assert desc["frame_rate"] == 10.0
