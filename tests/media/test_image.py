"""Tests for the JPEG-like image codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis import HealthCheck

from repro.media.image import ImageCodec, psnr, quant_table
from repro.util.errors import DecodingError, EncodingError


def smooth_image(shape, seed=0):
    """Smooth random field: compressible, like natural image content."""
    rng = np.random.default_rng(seed)
    base = rng.normal(0, 1, shape)
    img = np.cumsum(np.cumsum(base, axis=0), axis=1)
    img = (img - img.min()) / max(np.ptp(img), 1e-9) * 255
    return img.astype(np.uint8)


class TestQuantTable:
    def test_quality_bounds(self):
        with pytest.raises(EncodingError):
            quant_table(0)
        with pytest.raises(EncodingError):
            quant_table(101)

    def test_higher_quality_finer_steps(self):
        assert quant_table(90).sum() < quant_table(30).sum()

    def test_values_in_byte_range(self):
        for q in (1, 50, 100):
            table = quant_table(q)
            assert table.min() >= 1 and table.max() <= 255


class TestImageCodec:
    def test_roundtrip_shape_and_dtype(self):
        img = smooth_image((64, 64))
        out = ImageCodec().decode(ImageCodec().encode(img))
        assert out.shape == img.shape and out.dtype == np.uint8

    def test_non_multiple_of_8_dimensions(self):
        img = smooth_image((50, 37))
        out = ImageCodec().decode(ImageCodec(quality=90).encode(img))
        assert out.shape == (50, 37)

    def test_high_quality_high_fidelity(self):
        img = smooth_image((64, 64))
        out = ImageCodec(quality=95).decode(ImageCodec(quality=95).encode(img))
        assert psnr(img, out) > 35

    def test_quality_tradeoff(self):
        img = smooth_image((64, 64))
        hi = ImageCodec(quality=90).encode(img)
        lo = ImageCodec(quality=10).encode(img)
        assert len(lo) < len(hi)
        assert psnr(img, ImageCodec().decode(lo)) < psnr(img, ImageCodec().decode(hi))

    def test_compresses_smooth_content(self):
        img = smooth_image((128, 128))
        enc = ImageCodec(quality=75).encode(img)
        assert len(enc) < img.size / 4

    def test_flat_image_tiny(self):
        img = np.full((64, 64), 128, dtype=np.uint8)
        enc = ImageCodec().encode(img)
        out = ImageCodec().decode(enc)
        assert len(enc) < 200
        assert np.all(out == 128)

    def test_rejects_bad_inputs(self):
        codec = ImageCodec()
        with pytest.raises(EncodingError):
            codec.encode(np.zeros((4, 4, 3), dtype=np.uint8))
        with pytest.raises(EncodingError):
            codec.encode(np.zeros((4, 4), dtype=np.float64))
        with pytest.raises(EncodingError):
            codec.encode(np.zeros((0, 8), dtype=np.uint8))

    def test_rejects_alien_payload(self):
        with pytest.raises(DecodingError):
            ImageCodec().decode(b"JUNKJUNKJUNK")

    @given(seed=st.integers(0, 2**16), h=st.integers(8, 40), w=st.integers(8, 40),
           quality=st.integers(20, 95))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_roundtrip_never_crashes_and_bounds_error(self, seed, h, w, quality):
        img = smooth_image((h, w), seed=seed)
        out = ImageCodec(quality=quality).decode(ImageCodec(quality=quality).encode(img))
        assert out.shape == img.shape
        # even at low quality the reconstruction stays in range and sane
        assert psnr(img, out) > 15


class TestPsnr:
    def test_identical_is_infinite(self):
        img = smooth_image((16, 16))
        assert psnr(img, img) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((8, 8)))
