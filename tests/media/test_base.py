"""Unit tests for the MediaObject carrier."""

import pytest

from repro.media.base import MediaObject, MediaType


def video_obj(frames=20, rate=10.0, size=1000):
    return MediaObject(name="v", media_type=MediaType.VIDEO,
                       coding_method="SMPG", data=bytes(size),
                       attributes={"frames": frames, "frame_rate": rate})


class TestMediaObject:
    def test_needs_name(self):
        with pytest.raises(ValueError):
            MediaObject(name="", media_type=MediaType.TEXT,
                        coding_method="STXT", data=b"x")

    def test_video_duration_and_bitrate(self):
        obj = video_obj(frames=20, rate=10.0, size=1000)
        assert obj.duration == pytest.approx(2.0)
        assert obj.bitrate_bps() == pytest.approx(4000.0)
        assert obj.is_continuous

    def test_audio_duration(self):
        obj = MediaObject(name="a", media_type=MediaType.AUDIO,
                          coding_method="SPCM", data=bytes(100),
                          attributes={"sample_rate": 8000,
                                      "samples": 4000})
        assert obj.duration == pytest.approx(0.5)

    def test_midi_duration_from_attribute(self):
        obj = MediaObject(name="m", media_type=MediaType.MIDI,
                          coding_method="SMID", data=b"x",
                          attributes={"duration": 7.5})
        assert obj.duration == 7.5

    def test_static_media_no_duration(self):
        obj = MediaObject(name="i", media_type=MediaType.IMAGE,
                          coding_method="SIMG", data=b"x",
                          attributes={"width": 8, "height": 8})
        assert obj.duration is None
        assert obj.bitrate_bps() is None
        assert not obj.is_continuous

    def test_describe(self):
        desc = video_obj().describe()
        assert desc["media_type"] == "video"
        assert desc["size"] == 1000
        assert desc["duration"] == pytest.approx(2.0)
