"""Integration: billing meters the RPC flows automatically."""

import pytest

from repro.core import MitsSystem
from repro.school.billing import BillingService, Tariff
from tests.core.test_resume_and_multiuser import deploy_long_course


def test_registration_and_sessions_billed():
    mits = deploy_long_course()
    billing = BillingService(Tariff(per_registration=40,
                                    per_session_minute=0.60))
    mits.database.server.billing = billing
    mits.database.server._now_fn = lambda: mits.sim.now

    nav = mits.add_user("payer").navigator
    nav.start()
    nav.register("Payer")
    mits.sim.run(until=mits.sim.now + 5)
    number = nav.student["student_number"]

    mits.wait(nav.register_for_course("LC1"))
    # duplicate registration is free
    mits.wait(nav.register_for_course("LC1"))
    assert billing.balance(number) == 40.0

    nav.enter_classroom("LC1", "long-course")
    mits.sim.run(until=mits.sim.now + 10)
    position = nav.leave_classroom()
    mits.sim.run(until=mits.sim.now + 3)

    stmt = billing.statement(number)
    assert stmt["by_kind"]["registration"]["amount"] == 40.0
    session = stmt["by_kind"]["session"]
    assert session["quantity"] == pytest.approx(position / 60.0)

    # a second sitting bills only the increment past the saved position
    nav.enter_classroom("LC1", "long-course")
    mits.sim.run(until=mits.sim.now + 10)
    position2 = nav.leave_classroom()
    mits.sim.run(until=mits.sim.now + 3)
    stmt2 = billing.statement(number)
    assert stmt2["by_kind"]["session"]["quantity"] == pytest.approx(
        max(position, position2) / 60.0)
    assert billing.revenue() == billing.balance(number)
