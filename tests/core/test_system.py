"""Integration tests: the full MITS deployment end to end (Ch. 3+5)."""

import pytest

from repro.authoring import (
    HyperDocument, InteractiveDocument, NavigationLink, Page, PageItem,
    Scene, SceneObject, Section, TimelineEntry,
)
from repro.core import MitsSystem
from repro.navigator.navigator import NavigatorState
from repro.school.exercise import Exercise, MultipleChoiceQuestion
from repro.util.errors import PresentationError


def deploy(topology="star", **kwargs):
    """Standard deployment: assets produced, one course published."""
    mits = MitsSystem(topology=topology, **kwargs)
    assets = mits.produce_standard_assets("atm", seconds=1.0)
    author = mits.add_author(
        "author1" if topology == "star" else "author1", "atm-101",
        catalog=assets)
    scene = Scene(name="intro", objects=[
        SceneObject(name="clip", kind="video",
                    content_ref="atm-intro-video"),
        SceneObject(name="notes", kind="text", content_ref="atm-notes",
                    position=(0, 200)),
        SceneObject(name="skip", kind="choice", label="Skip")])
    scene.timeline.add(TimelineEntry("clip", 0.0))
    scene.timeline.add(TimelineEntry("notes", 0.0, 1.0))
    scene.behavior.when_selected("skip", ("stop", "clip"))
    doc = InteractiveDocument("atm-101", title="ATM Networks")
    doc.add_section(Section(name="s1", scenes=[scene]))
    compiled = author.editor.compile_imd(doc)
    mits.wait(author.publish_courseware(
        compiled, courseware_id="atm-101", title="ATM Networks",
        program="networking", keywords=["networks/atm", "broadband"],
        introduction_ref="atm-intro-video", author="prof"))
    mits.wait(author.publish_course(
        course_code="ELG5376", name="ATM Networks", program="networking",
        courseware_id="atm-101"))
    mits.wait(author.publish_library_doc(
        doc_id="lib-atm", title="ATM notes", media_kind="text",
        content_ref="atm-notes", keywords=["networks/atm"]))
    return mits


class TestDeployment:
    def test_production_publishes_to_database(self):
        mits = deploy()
        stats = mits.database.db.statistics()
        assert stats["content_objects"] == 4
        assert stats["courseware"] == 1
        assert stats["courses"] == 1

    def test_snapshot_lists_sites(self):
        mits = deploy()
        snap = mits.snapshot()
        assert snap["sites"]["database"] == "database"
        assert "author1" in snap["sites"]["authors"]

    def test_snapshot_has_metrics_section(self):
        mits = deploy()
        snap = mits.snapshot()
        metrics = snap["metrics"]
        # the layers the deployment exercised are all represented
        assert "simulator" in metrics
        assert metrics["simulator"]["events_run"][0]["value"] > 0
        assert "vc" in metrics and "pdu_delay_seconds" in metrics["vc"]
        assert any(h["count"] > 0 for h in metrics["vc"]["pdu_delay_seconds"])
        assert "link" in metrics and "drops_total" in metrics["link"]
        assert "connection" in metrics and "retransmits" in metrics["connection"]
        # and the dump is JSON-serialisable as-is
        import json
        json.dumps(snap["metrics"])

    def test_courseware_keywords_indexed(self):
        mits = deploy()
        assert mits.database.db.docs_by_keyword("broadband") == ["atm-101"]

    def test_snapshot_has_timeseries_section(self):
        mits = deploy()
        snap = mits.snapshot()
        ts = snap["timeseries"]
        assert ts["enabled"] is True
        assert ts["samples"] > 0
        keys = {(s["component"], s["name"]) for s in ts["series"]}
        assert ("simulator", "events_run") in keys
        assert ("simulator", "queue_depth") in keys
        import json
        json.dumps(ts)

    def test_snapshot_profile_disabled_by_default(self):
        mits = deploy()
        assert mits.snapshot()["profile"]["enabled"] is False

    def test_snapshot_profile_when_enabled(self):
        mits = deploy(profile=True)
        profile = mits.snapshot()["profile"]
        assert profile["enabled"] is True
        assert profile["events"] == mits.sim.events_run
        assert profile["hotspots"]

    def test_telemetry_can_be_disabled(self):
        mits = deploy(telemetry_interval=None)
        assert mits.snapshot()["timeseries"] == {"enabled": False}


class TestSampleLearningSession:
    """The §5.4 walkthrough, over the simulated network."""

    def test_full_session(self):
        mits = deploy()
        user = mits.add_user("user1")
        nav = user.navigator

        # Fig 5.3: entry screen
        entry = nav.start()
        assert entry["video"] == "welcome"
        assert nav.state is NavigatorState.ENTRY

        # Fig 5.4: registration
        done = []
        nav.register("Ada Lovelace", "1 Loop Rd", "ada@mirl.example",
                     on_done=done.append)
        mits.sim.run(until=mits.sim.now + 5)
        assert done and done[0]["student_number"].startswith("S")
        assert nav.state is NavigatorState.MAIN

        # Fig 5.4d: course registration with introduction video
        programs = mits.wait(nav.list_programs())
        assert programs == ["networking"]
        courses = mits.wait(nav.list_courses("networking"))
        assert courses[0]["course_code"] == "ELG5376"
        summaries = mits.wait(nav.client.list_courseware("networking"))
        intro_rx = nav.course_introduction(summaries[0]["introduction_ref"])
        mits.sim.run(until=mits.sim.now + 20)
        assert intro_rx.finished and len(intro_rx.data) > 0
        mits.wait(nav.register_for_course("ELG5376"))

        # Fig 5.5: classroom — interact the moment the session is ready
        # (the demo course is only a second long)
        interacted = []

        def on_ready(sess):
            assert "skip" in sess.presenter.clickable()
            sess.click("skip")
            sess.add_bookmark("notes")
            interacted.append(True)

        session = nav.enter_classroom("ELG5376", "atm-101",
                                      on_ready=on_ready)
        mits.sim.run(until=mits.sim.now + 30)
        assert session.ready and interacted
        position = nav.leave_classroom()
        assert position > 0
        mits.sim.run(until=mits.sim.now + 5)

        # resume position persisted server-side
        saved = mits.wait(nav.client.get_resume(
            nav.student["student_number"], "atm-101"))
        assert saved == pytest.approx(position)
        marks = mits.wait(nav.client.get_bookmarks(
            nav.student["student_number"], "atm-101"))
        assert len(marks) == 1

        # Fig 5.6: profile update
        updated = []
        nav.update_profile(address="2 New St", on_result=updated.append)
        mits.sim.run(until=mits.sim.now + 5)
        assert nav.student["address"] == "2 New St"

        # Fig 5.7: library browsing with cross references
        docs = mits.wait(nav.browse_library())
        assert docs[0]["doc_id"] == "lib-atm"
        read = []
        nav.read_document("lib-atm", on_done=read.append)
        mits.sim.run(until=mits.sim.now + 20)
        assert read and read[0]["bytes"] > 0
        assert "text" in read[0]

        nav.exit()
        assert nav.state is NavigatorState.ENTRY
        assert ("classroom", "leave-classroom") not in nav.trace  # traced under MAIN

    def test_login_with_existing_number(self):
        mits = deploy()
        user = mits.add_user("user1")
        nav = user.navigator
        nav.start()
        done = []
        nav.register("Bob", on_done=done.append)
        mits.sim.run(until=mits.sim.now + 5)
        number = done[0]["student_number"]
        nav.exit()

        nav.start()
        back = []
        nav.login(number, on_done=back.append)
        mits.sim.run(until=mits.sim.now + 5)
        assert back and back[0]["name"] == "Bob"

    def test_login_unknown_number_fails(self):
        mits = deploy()
        nav = mits.add_user("user1").navigator
        nav.start()
        errors = []
        nav.login("S9999", on_error=errors.append)
        mits.sim.run(until=mits.sim.now + 5)
        assert errors
        assert nav.state is NavigatorState.ENTRY

    def test_facilities_require_login(self):
        mits = deploy()
        nav = mits.add_user("user1").navigator
        nav.start()
        with pytest.raises(PresentationError):
            nav.facilities()


class TestSchoolFeatures:
    def test_bulletin_and_exercise_flow(self):
        mits = deploy()
        service = mits.facilitator.service
        service.exercises.add(Exercise(
            exercise_id="ex1", course_code="ELG5376", title="Cells",
            questions=[MultipleChoiceQuestion(
                "ATM cell size?", ["48", "53", "64"], correct=1)]))
        service.bulletin.post("school.announcements", "admin",
                              "Welcome to MIRL TeleSchool", "enjoy")

        nav = mits.add_user("user1").navigator
        nav.start()
        done = []
        nav.register("Ada", on_done=done.append)
        mits.sim.run(until=mits.sim.now + 5)

        posts = mits.wait(nav.read_bulletin("school.announcements"))
        assert posts[0]["subject"] == "Welcome to MIRL TeleSchool"

        result = mits.wait(nav.take_exercise("ex1", [1]))
        assert result["score"] == 1.0

        standings = mits.wait(nav.school.standings("ex1"))
        assert standings[0]["student_number"] == \
            nav.student["student_number"]

    def test_facilitator_q_and_a(self):
        mits = deploy()
        mits.facilitator.service.facilitator.teach(
            ["atm", "cell"], "53 octets: 5 header + 48 payload")
        nav = mits.add_user("user1").navigator
        nav.start()
        nav.register("Ada")
        mits.sim.run(until=mits.sim.now + 5)
        answer = mits.wait(nav.ask_facilitator("how big is an ATM cell?"))
        assert answer["answered"] is True
        unknown = mits.wait(nav.ask_facilitator("meaning of life?"))
        assert unknown["answered"] is False
        assert mits.facilitator.service.facilitator.pending

    def test_conference_between_users(self):
        mits = deploy()
        nav1 = mits.add_user("user1").navigator
        nav2 = mits.add_user("user2").navigator
        for nav, name in ((nav1, "Ada"), (nav2, "Bob")):
            nav.start()
            nav.register(name)
        mits.sim.run(until=mits.sim.now + 5)
        s1 = nav1.student["student_number"]
        s2 = nav2.student["student_number"]
        mits.wait(nav1.school.join_conference("common-room", s1))
        mits.wait(nav2.school.join_conference("common-room", s2))
        mits.wait(nav1.school.say("common-room", s1, "anyone here?"))
        transcript = mits.wait(nav2.school.transcript("common-room"))
        assert transcript[-1]["body"] == "anyone here?"


class TestWanDeployment:
    def test_ocrinet_session(self):
        mits = deploy(topology="ocrinet")
        nav = mits.add_user("user9").navigator
        nav.start()
        done = []
        nav.register("Remote Rita", on_done=done.append)
        mits.sim.run(until=mits.sim.now + 10)
        assert done
        ready = []
        session = nav.enter_classroom("ELG5376", "atm-101",
                                      on_ready=ready.append)
        mits.sim.run(until=mits.sim.now + 60)
        assert session.ready
        assert session.presenter.load_stats["bytes"] > 0
