"""Integration: resume across sessions, concurrent users, and uploads."""

import pytest

from repro.authoring import (
    InteractiveDocument, Scene, SceneObject, Section, TimelineEntry,
)
from repro.core import MitsSystem
from repro.util.errors import PresentationError


def deploy_long_course():
    """A course long enough (6 s) that a student can leave mid-way."""
    mits = MitsSystem(topology="star")
    assets = mits.produce_standard_assets("lc", seconds=1.0)
    author = mits.add_author("author1", "long-course", catalog=assets)
    doc = InteractiveDocument("long-course", title="Long course")
    for i in range(3):
        scene = Scene(name=f"part{i}", objects=[
            SceneObject(name=f"txt{i}", kind="text",
                        content_ref="lc-notes")])
        scene.timeline.add(TimelineEntry(f"txt{i}", 0.0, 2.0))
        doc.add_section(Section(name=f"s{i}", scenes=[scene]))
    compiled = author.editor.compile_imd(doc)
    mits.wait(author.publish_courseware(
        compiled, courseware_id="long-course", title="Long course",
        program="p"))
    mits.wait(author.publish_course(
        course_code="LC1", name="Long course", program="p",
        courseware_id="long-course"))
    return mits


class TestResumeCycle:
    def test_second_session_resumes_where_first_left(self):
        mits = deploy_long_course()
        nav = mits.add_user("user1").navigator
        nav.start()
        nav.register("Resumer")
        mits.sim.run(until=mits.sim.now + 5)

        # first sitting: watch ~3 s then leave
        entered_at = {}

        def on_ready(session):
            entered_at["t"] = mits.sim.now

        nav.enter_classroom("LC1", "long-course", on_ready=on_ready)
        # run until ready then 3 more seconds of class
        mits.sim.run(until=mits.sim.now + 10)
        assert "t" in entered_at
        first_position = nav.leave_classroom()
        mits.sim.run(until=mits.sim.now + 2)
        assert first_position > 0

        # second sitting: the saved position arrives at the session
        resumed = {}

        def on_ready2(session):
            resumed["position"] = session.resume_position

        nav.enter_classroom("LC1", "long-course", on_ready=on_ready2)
        mits.sim.run(until=mits.sim.now + 10)
        assert resumed["position"] == pytest.approx(first_position)
        nav.leave_classroom()

    def test_bookmarks_survive_sessions(self):
        mits = deploy_long_course()
        nav = mits.add_user("user1").navigator
        nav.start()
        nav.register("Marker")
        mits.sim.run(until=mits.sim.now + 5)

        def on_ready(session):
            session.add_bookmark("txt0")

        nav.enter_classroom("LC1", "long-course", on_ready=on_ready)
        mits.sim.run(until=mits.sim.now + 15)
        nav.leave_classroom()
        mits.sim.run(until=mits.sim.now + 2)
        marks = mits.wait(nav.client.get_bookmarks(
            nav.student["student_number"], "long-course"))
        assert len(marks) == 1


class TestConcurrentUsers:
    def test_many_students_share_one_course(self):
        mits = deploy_long_course()
        navs = []
        for i in range(5):
            nav = mits.add_user(f"u{i}").navigator
            nav.start()
            nav.register(f"student-{i}")
            navs.append(nav)
        mits.sim.run(until=mits.sim.now + 10)
        ready = []
        for nav in navs:
            nav.enter_classroom("LC1", "long-course",
                                on_ready=lambda s: ready.append(s))
        mits.sim.run(until=mits.sim.now + 60)
        assert len(ready) == 5
        # every session has its own engine and instances
        engines = {id(s.presenter.engine) for s in ready}
        assert len(engines) == 5
        for nav in navs:
            nav.leave_classroom()

    def test_students_get_distinct_numbers(self):
        mits = deploy_long_course()
        numbers = []
        for i in range(4):
            nav = mits.add_user(f"n{i}").navigator
            nav.start()
            nav.register(f"s{i}", on_done=lambda p: numbers.append(
                p["student_number"]))
        mits.sim.run(until=mits.sim.now + 10)
        assert len(set(numbers)) == 4


class TestUploadPaths:
    def test_produce_and_publish_helper(self):
        mits = MitsSystem()
        call = mits.production.produce_and_publish(
            "image", "fresh-diagram", width=64, height=48)
        mits.wait(call)
        record = mits.database.db.content.get("fresh-diagram")
        assert record.media_kind == "image"
        assert record.coding_method == "SIMG"

    def test_unknown_kind_rejected(self):
        mits = MitsSystem()
        with pytest.raises(KeyError):
            mits.production.produce_and_publish("hologram", "x")
