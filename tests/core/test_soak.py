"""Soak test: a realistic load over the OCRInet-like WAN.

Ten students at edge sites concurrently register, take the same
course (content streamed on demand), interact, ask the facilitator,
and leave — while the production center keeps publishing new media.
Everything must complete, every session independent, no silent loss.
"""

import pytest

from repro.authoring import (
    InteractiveDocument, Scene, SceneObject, Section, TimelineEntry,
)
from repro.core import MitsSystem


@pytest.fixture(scope="module")
def loaded_system():
    mits = MitsSystem(topology="ocrinet")
    assets = mits.produce_standard_assets("soak", seconds=1.0)
    author = mits.add_author("author1", "soak-course", catalog=assets)
    scene = Scene(name="lesson", objects=[
        SceneObject(name="clip", kind="video",
                    content_ref="soak-intro-video"),
        SceneObject(name="notes", kind="text", content_ref="soak-notes"),
        SceneObject(name="skip", kind="choice", label="Skip")])
    scene.timeline.add(TimelineEntry("clip", 0.0))
    scene.timeline.add(TimelineEntry("notes", 0.0, 1.0))
    scene.behavior.when_selected("skip", ("stop", "clip"))
    doc = InteractiveDocument("soak-course")
    doc.add_section(Section(name="s1", scenes=[scene]))
    mits.wait(author.publish_courseware(
        author.editor.compile_imd(doc), courseware_id="soak-course",
        title="Soak", program="p"))
    mits.wait(author.publish_course(
        course_code="SOAK1", name="Soak", program="p",
        courseware_id="soak-course"))
    mits.facilitator.service.facilitator.teach(["cell"], "53 bytes")
    return mits


N_USERS = 10


def test_ten_concurrent_students(loaded_system):
    mits = loaded_system
    navs = []
    for i in range(N_USERS):
        nav = mits.add_user(f"soak-u{i}").navigator
        nav.start()
        nav.register(f"student-{i}")
        navs.append(nav)
    mits.sim.run(until=mits.sim.now + 15)
    assert all(nav.student for nav in navs)

    clicked = []
    answers = []
    for i, nav in enumerate(navs):
        mits.wait(nav.register_for_course("SOAK1"))

        def on_ready(session, i=i):
            session.click("skip")
            clicked.append(i)

        nav.enter_classroom("SOAK1", "soak-course", on_ready=on_ready)
        nav.ask_facilitator("how big is a cell?",
                            on_result=answers.append)
    # meanwhile the production center keeps publishing
    publish = mits.production.produce_and_publish(
        "image", "soak-extra-diagram")
    mits.sim.run(until=mits.sim.now + 120)

    assert sorted(clicked) == list(range(N_USERS))
    assert len(answers) == N_USERS
    assert all(a["answered"] for a in answers)
    assert publish.done and publish.error is None

    positions = [nav.leave_classroom() for nav in navs]
    mits.sim.run(until=mits.sim.now + 10)
    assert all(p > 0 for p in positions)

    # every resume position persisted
    for nav in navs:
        saved = mits.wait(nav.client.get_resume(
            nav.student["student_number"], "soak-course"))
        assert saved > 0

    stats = mits.database.db.statistics()
    assert stats["students"] == N_USERS
    assert stats["course_registrations"] == N_USERS
    # the database CPU actually queued work
    assert mits.database.processor.jobs_done > N_USERS * 5


def test_network_carried_all_sessions(loaded_system):
    mits = loaded_system
    total_switched = sum(sw.stats.switched
                         for sw in mits.network.switches.values())
    assert total_switched > 3_000  # genuine cell-level traffic
    unroutable = sum(sw.stats.unroutable
                     for sw in mits.network.switches.values())
    # closed VCs may strand a handful of in-flight cells; anything more
    # means routing is broken
    assert unroutable < total_switched * 0.01
