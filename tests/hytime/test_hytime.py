"""Tests for HyTime modules, addressing, scheduling, and the engine."""

import pytest

from repro.hytime import (
    Axis, CoordinateAddress, Event, FiniteCoordinateSpace, HyTimeEngine,
    HyTimeModule, NameSpaceAddress, Rendition, SemanticAddress,
    resolve_address, validate_modules,
)
from repro.hytime.modules import dependency_closure
from repro.hytime.location import build_name_space, to_name_space
from repro.hytime.sgml import SgmlParser
from repro.util.errors import DecodingError

M = HyTimeModule


class TestModules:
    def test_closure_pulls_dependencies(self):
        closure = dependency_closure([M.RENDITION])
        assert closure == {M.BASE, M.MEASUREMENT, M.SCHEDULING, M.RENDITION}

    def test_base_always_included(self):
        assert dependency_closure([]) == {M.BASE}

    def test_valid_declaration(self):
        validate_modules([M.BASE, M.LOCATION, M.HYPERLINKS])

    def test_missing_dependency_rejected(self):
        with pytest.raises(DecodingError):
            validate_modules([M.BASE, M.HYPERLINKS])  # needs location

    def test_missing_base_rejected(self):
        with pytest.raises(DecodingError):
            validate_modules([M.LOCATION])


DOC = """
<doc modules="base location hyperlinks measurement scheduling" id="root">
  <section id="intro"><p id="p1">Welcome to <ref id="r1"/> ATM.</p></section>
  <section id="cells"><p id="p2">Cells are 53 bytes.</p></section>
  <clink anchor="r1" target="cells"/>
  <fcs id="show">
    <axis name="time" unit="second" extent="60"/>
    <event name="title" axis="time" start="0" length="5"/>
    <event name="video" axis="time" start="5" length="30"/>
  </fcs>
</doc>
"""


class TestAddressing:
    def setup_method(self):
        self.root = SgmlParser().parse(DOC)

    def test_name_space_address(self):
        el = resolve_address(NameSpaceAddress("p2"), self.root)
        assert el.text.startswith("Cells")

    def test_duplicate_ids_rejected(self):
        bad = SgmlParser().parse('<d><a id="x"/><b id="x"/></d>')
        with pytest.raises(DecodingError):
            build_name_space(bad)

    def test_coordinate_address(self):
        el = resolve_address(CoordinateAddress([1, 0]), self.root)
        assert el.attributes["id"] == "p2"

    def test_coordinate_out_of_tree(self):
        with pytest.raises(DecodingError):
            resolve_address(CoordinateAddress([9]), self.root)

    def test_semantic_address_with_resolver(self):
        def resolver(query, root):
            # "the paragraph mentioning X"
            for p in root.find_all("p"):
                if query in p.full_text():
                    return p
            return None
        el = resolve_address(SemanticAddress("53 bytes"), self.root,
                             semantic_resolver=resolver)
        assert el.attributes["id"] == "p2"

    def test_semantic_needs_resolver(self):
        with pytest.raises(DecodingError):
            resolve_address(SemanticAddress("anything"), self.root)

    def test_conversion_to_name_space(self):
        addr = to_name_space(CoordinateAddress([1]), self.root)
        assert addr == NameSpaceAddress("cells")

    def test_conversion_fails_without_id(self):
        anon = SgmlParser().parse("<d><p/></d>")
        with pytest.raises(DecodingError):
            to_name_space(CoordinateAddress([0]), anon)


class TestScheduling:
    def _fcs(self):
        return FiniteCoordinateSpace("show", [
            Axis("time", "second", 60.0), Axis("x", "pixel", 640.0)])

    def test_schedule_and_query(self):
        fcs = self._fcs()
        fcs.schedule(Event("a", {"time": (0.0, 10.0)}))
        fcs.schedule(Event("b", {"time": (5.0, 10.0)}))
        assert [e.name for e in fcs.overlapping("time", 7.0)] == ["a", "b"]
        assert [e.name for e in fcs.overlapping("time", 12.0)] == ["b"]

    def test_extent_bounds_checked(self):
        fcs = self._fcs()
        with pytest.raises(DecodingError):
            fcs.schedule(Event("late", {"time": (55.0, 10.0)}))
        with pytest.raises(DecodingError):
            fcs.schedule(Event("alien", {"depth": (0.0, 1.0)}))

    def test_duplicate_event_rejected(self):
        fcs = self._fcs()
        fcs.schedule(Event("a", {"time": (0.0, 1.0)}))
        with pytest.raises(DecodingError):
            fcs.schedule(Event("a", {"time": (2.0, 1.0)}))

    def test_place_after_synchronisation(self):
        fcs = self._fcs()
        fcs.schedule(Event("audio", {"time": (0.0, 8.0)}))
        image = fcs.place_after("image", "audio", "time", 5.0)
        assert image.start("time") == 8.0

    def test_place_with_synchronisation(self):
        fcs = self._fcs()
        fcs.schedule(Event("video", {"time": (3.0, 8.0)}))
        caption = fcs.place_with("caption", "video", "time", 8.0)
        assert caption.start("time") == 3.0

    def test_timeline_sorted(self):
        fcs = self._fcs()
        fcs.schedule(Event("b", {"time": (5.0, 2.0)}))
        fcs.schedule(Event("a", {"time": (0.0, 2.0)}))
        assert [n for (_, _, n) in fcs.timeline("time")] == ["a", "b"]

    def test_rendition_projection(self):
        generic = FiniteCoordinateSpace("generic", [Axis("t", "unit", 10.0)])
        generic.schedule(Event("clip", {"t": (2.0, 4.0)}))
        layout = FiniteCoordinateSpace("layout", [Axis("time", "second", 120.0)])
        rendition = Rendition(source=generic, target=layout,
                              axis_map={"t": ("time", 10.0, 5.0)})
        projected = rendition.project()
        assert projected[0].extents["time"] == (25.0, 40.0)

    def test_rendition_missing_axis_map(self):
        generic = FiniteCoordinateSpace("g", [Axis("t", "unit", 10.0)])
        generic.schedule(Event("e", {"t": (0.0, 1.0)}))
        layout = FiniteCoordinateSpace("l", [Axis("time", "second", 100.0)])
        with pytest.raises(DecodingError):
            Rendition(source=generic, target=layout, axis_map={}).project()


class TestEngine:
    def test_full_document_processing(self):
        doc = HyTimeEngine().process(DOC)
        assert M.HYPERLINKS in doc.modules
        assert doc.resolve("intro").name == "section"
        assert len(doc.hyperlinks) == 1
        assert doc.events_at("show", "time", 10.0) == ["video"]

    def test_links_from_anchor(self):
        doc = HyTimeEngine().process(DOC)
        links = doc.links_from("r1")
        assert len(links) == 1

    def test_undeclared_module_usage_rejected(self):
        bad = '<doc modules="base"><clink anchor="a" target="b"/></doc>'
        with pytest.raises(DecodingError):
            HyTimeEngine().process(bad)

    def test_dangling_link_rejected(self):
        bad = ('<doc modules="base location hyperlinks">'
               '<p id="a"/><clink anchor="a" target="ghost"/></doc>')
        with pytest.raises(DecodingError):
            HyTimeEngine().process(bad)

    def test_fcs_without_scheduling_module_rejected(self):
        bad = ('<doc modules="base"><fcs id="f">'
               '<axis name="t" extent="10"/></fcs></doc>')
        with pytest.raises(DecodingError):
            HyTimeEngine().process(bad)

    def test_documents_processed_counter(self):
        engine = HyTimeEngine()
        engine.process(DOC)
        engine.process(DOC)
        assert engine.documents_processed == 2
