"""Tests for the SGML parser and DTD validation."""

import pytest

from repro.hytime.sgml import (
    Dtd, ElementDecl, SgmlElement, SgmlParser, write_sgml,
)
from repro.util.errors import DecodingError

parser = SgmlParser()


class TestParsing:
    def test_simple_document(self):
        root = parser.parse('<doc><title>Hello</title><p>World</p></doc>')
        assert root.name == "doc"
        assert [c.name for c in root.children] == ["title", "p"]
        assert root.children[0].text == "Hello"

    def test_attributes(self):
        root = parser.parse('<doc id="d1" lang="en"><p id="p1"/></doc>')
        assert root.attributes == {"id": "d1", "lang": "en"}
        assert root.children[0].attributes["id"] == "p1"

    def test_self_closing_and_nesting(self):
        root = parser.parse('<a><b><c/></b><b/></a>')
        assert len(root.children) == 2
        assert root.children[0].children[0].name == "c"

    def test_entities_decoded(self):
        root = parser.parse('<p a="x &amp; y">1 &lt; 2</p>')
        assert root.text == "1 < 2"
        assert root.attributes["a"] == "x & y"

    def test_comments_ignored(self):
        root = parser.parse('<doc><!-- note --><p/></doc>')
        assert [c.name for c in root.children] == ["p"]

    def test_cdata_preserved(self):
        root = parser.parse('<p><![CDATA[<raw & data>]]></p>')
        assert root.text == "<raw & data>"

    def test_doctype_skipped(self):
        root = parser.parse('<!DOCTYPE doc SYSTEM "doc.dtd"><doc/>')
        assert root.name == "doc"

    def test_mismatched_tags_rejected(self):
        with pytest.raises(DecodingError):
            parser.parse("<a><b></a></b>")

    def test_unclosed_rejected(self):
        with pytest.raises(DecodingError):
            parser.parse("<a><b></b>")

    def test_multiple_roots_rejected(self):
        with pytest.raises(DecodingError):
            parser.parse("<a/><b/>")

    def test_text_outside_root_rejected(self):
        with pytest.raises(DecodingError):
            parser.parse("stray <a/>")
        with pytest.raises(DecodingError):
            parser.parse("<a/> stray")

    def test_empty_input_rejected(self):
        with pytest.raises(DecodingError):
            parser.parse("   ")


class TestTreeQueries:
    def test_find_all_descendants(self):
        root = parser.parse("<d><s><p/><p/></s><p/></d>")
        assert len(root.find_all("p")) == 3

    def test_full_text(self):
        root = parser.parse("<d>one <em>two</em></d>")
        assert "one" in root.full_text() and "two" in root.full_text()

    def test_path_coordinates(self):
        root = parser.parse("<d><a/><b><c/></b></d>")
        c = root.children[1].children[0]
        assert c.path() == [1, 0]
        assert root.path() == []


class TestDtd:
    DTD = Dtd("course", [
        ElementDecl("course", children=("section",), allow_text=False),
        ElementDecl("section", children=("p", "video"),
                    required_attributes=("id",)),
        ElementDecl("p"),
        ElementDecl("video", children=(), required_attributes=("src",)),
    ])

    def test_valid_document(self):
        text = ('<course><section id="s1"><p>text</p>'
                '<video src="clip"/></section></course>')
        SgmlParser(self.DTD).parse(text)

    def test_wrong_root(self):
        with pytest.raises(DecodingError):
            SgmlParser(self.DTD).parse("<section id='x'/>")

    def test_undeclared_element(self):
        with pytest.raises(DecodingError):
            SgmlParser(self.DTD).parse(
                '<course><chapter id="c"/></course>')

    def test_missing_required_attribute(self):
        with pytest.raises(DecodingError):
            SgmlParser(self.DTD).parse("<course><section/></course>")

    def test_empty_element_with_children(self):
        with pytest.raises(DecodingError):
            SgmlParser(self.DTD).parse(
                '<course><section id="s"><video src="x"><p/></video>'
                "</section></course>")

    def test_forbidden_child(self):
        with pytest.raises(DecodingError):
            SgmlParser(self.DTD).parse(
                '<course><section id="s"><section id="t"/></section>'
                "</course>")

    def test_text_where_forbidden(self):
        with pytest.raises(DecodingError):
            SgmlParser(self.DTD).parse(
                "<course>stray text</course>")


class TestWriter:
    def test_roundtrip(self):
        text = ('<doc id="d"><p a="1">hi &amp; bye</p><q/></doc>')
        root = parser.parse(text)
        again = parser.parse(write_sgml(root))
        assert again.attributes == root.attributes
        assert [c.name for c in again.children] == ["p", "q"]
        assert again.children[0].text.strip() == "hi & bye"
