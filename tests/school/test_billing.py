"""Tests for the billing service."""

import pytest

from repro.school.billing import BillingService, Tariff
from repro.util.errors import DatabaseError


class TestTariff:
    def test_defaults_valid(self):
        Tariff()

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            Tariff(per_session_minute=-1)


class TestLedger:
    def test_registration_charge(self):
        billing = BillingService(Tariff(per_registration=50))
        billing.record_registration("S1", "ELG5376", at=1.0)
        assert billing.balance("S1") == 50.0

    def test_session_charged_by_minute(self):
        billing = BillingService(Tariff(per_session_minute=0.30))
        billing.record_session("S1", "ELG5376", seconds=600)
        assert billing.balance("S1") == pytest.approx(3.0)

    def test_stream_charged_by_megabyte(self):
        billing = BillingService(Tariff(per_streamed_megabyte=0.20))
        billing.record_stream("S1", "intro-video", bytes_streamed=5_000_000)
        assert billing.balance("S1") == pytest.approx(1.0)

    def test_free_exercises(self):
        billing = BillingService()
        billing.record_exercise("S1", "ex1")
        assert billing.balance("S1") == 0.0

    def test_negative_quantities_rejected(self):
        billing = BillingService()
        with pytest.raises(DatabaseError):
            billing.record_session("S1", "c", seconds=-1)
        with pytest.raises(DatabaseError):
            billing.record_stream("S1", "c", bytes_streamed=-1)

    def test_statement_grouped(self):
        billing = BillingService(Tariff(per_registration=10,
                                        per_session_minute=1.0))
        billing.record_registration("S1", "A")
        billing.record_session("S1", "A", seconds=60)
        billing.record_session("S1", "A", seconds=120)
        stmt = billing.statement("S1")
        assert stmt["entries"] == 3
        assert stmt["by_kind"]["session"]["items"] == 2
        assert stmt["by_kind"]["session"]["quantity"] == pytest.approx(3.0)
        assert stmt["total"] == pytest.approx(13.0)

    def test_ledgers_isolated_and_revenue_totals(self):
        billing = BillingService(Tariff(per_registration=10))
        billing.record_registration("S1", "A")
        billing.record_registration("S2", "A")
        assert billing.balance("S1") == 10
        assert billing.revenue() == 20

    def test_unknown_student_zero(self):
        assert BillingService().balance("ghost") == 0.0
