"""Tests for the audio conference bridge (multimedia conferencing)."""

import numpy as np
import pytest

from repro.atm import Simulator
from repro.atm.topology import star_campus
from repro.school.conference_av import (
    FRAME_SAMPLES, FRAME_SECONDS, AudioBridge, build_conference,
    pack_audio_frame, unpack_audio_frame,
)
from repro.util.errors import NetworkError


def constant_audio(value: int, frames: int = 10) -> np.ndarray:
    return np.full(FRAME_SAMPLES * frames, value, dtype=np.int16)


def make_conference(n=3):
    sim = Simulator()
    hosts = [f"p{i}" for i in range(n)] + ["bridge"]
    net, _ = star_campus(sim, hosts)
    bridge, participants = build_conference(
        sim, net, "bridge", [f"p{i}" for i in range(n)])
    return sim, bridge, participants


class TestFraming:
    def test_pack_unpack(self):
        samples = np.arange(FRAME_SAMPLES, dtype=np.int16)
        pid, idx, back = unpack_audio_frame(
            pack_audio_frame(3, 17, samples))
        assert (pid, idx) == (3, 17)
        assert np.array_equal(back, samples)


class TestMixing:
    def test_mix_minus_excludes_own_voice(self):
        sim, bridge, (a, b, c) = make_conference(3)
        a.talk(constant_audio(100))
        b.talk(constant_audio(200))
        c.talk(constant_audio(300))
        sim.run(until=2.0)
        # A hears B + C, never its own 100
        heard_a = a.heard_audio()
        assert len(heard_a) > 0
        assert set(np.unique(heard_a)) <= {500}
        assert set(np.unique(b.heard_audio())) <= {400}
        assert set(np.unique(c.heard_audio())) <= {300}

    def test_all_frames_mixed_and_delivered(self):
        sim, bridge, participants = make_conference(2)
        for i, p in enumerate(participants):
            p.talk(constant_audio((i + 1) * 100, frames=8))
        sim.run(until=2.0)
        assert bridge.frames_received == 16
        assert bridge.frames_mixed == 8
        for p in participants:
            assert len(p.heard) == 8

    def test_single_speaker_silence_for_them(self):
        sim, bridge, (a, b) = make_conference(2)
        a.talk(constant_audio(1000, frames=5))
        sim.run(until=2.0)
        # B hears A; A hears silence (mix minus own voice)
        assert set(np.unique(b.heard_audio())) <= {1000}
        heard_a = a.heard_audio()
        assert len(heard_a) > 0 and set(np.unique(heard_a)) <= {0}

    def test_clipping_bounded(self):
        sim, bridge, (a, b, c) = make_conference(3)
        a.talk(constant_audio(30000, frames=4))
        b.talk(constant_audio(30000, frames=4))
        c.talk(constant_audio(30000, frames=4))
        sim.run(until=2.0)
        heard = a.heard_audio()
        assert heard.max() <= 32767  # 60000 clipped to int16 max

    def test_latency_within_two_frames(self):
        sim, bridge, (a, b) = make_conference(2)
        start = sim.now
        a.talk(constant_audio(500, frames=3))
        sim.run(until=2.0)
        first = min(h.arrived_at for h in b.heard)
        assert first - start < 3 * FRAME_SECONDS

    def test_requires_int16(self):
        sim, bridge, (a, b) = make_conference(2)
        with pytest.raises(NetworkError):
            a.talk(np.zeros(100, dtype=np.float64))

    def test_unknown_participant_ignored(self):
        sim, bridge, (a, b) = make_conference(2)
        # a rogue frame claiming participant id 99
        a.send_vc.send(pack_audio_frame(
            99, 0, np.zeros(FRAME_SAMPLES, dtype=np.int16)))
        sim.run(until=1.0)
        assert bridge.frames_received == 0
