"""Tests for the bulletin board, exercises, and discussion services."""

import pytest

from repro.school.bulletin import BulletinBoard
from repro.school.discussion import DiscussionService, Facilitator
from repro.school.exercise import (
    Exercise, ExerciseService, MultipleChoiceQuestion, NumericQuestion,
    TextQuestion,
)
from repro.util.errors import DatabaseError


class TestBulletin:
    def test_default_groups(self):
        board = BulletinBoard()
        assert "school.announcements" in board.groups()

    def test_post_and_list(self):
        board = BulletinBoard()
        board.post("school.courses", "prof", "New ATM course", "enrol now",
                   now=1.0)
        posts = board.list_posts("school.courses")
        assert posts[0]["subject"] == "New ATM course"

    def test_unknown_group_rejected(self):
        with pytest.raises(DatabaseError):
            BulletinBoard().post("ghost", "a", "s", "b")
        with pytest.raises(DatabaseError):
            BulletinBoard().list_posts("ghost")

    def test_threading(self):
        board = BulletinBoard()
        root = board.post("school.courses", "prof", "Q1 answers", "...")
        reply = board.post("school.courses", "stud", "Re: Q1", "why?",
                           in_reply_to=root.post_id)
        nested = board.post("school.courses", "prof", "Re: Re: Q1",
                            "because", in_reply_to=reply.post_id)
        thread = board.thread(nested.post_id)
        assert [p.post_id for p in thread] == [root.post_id, reply.post_id,
                                               nested.post_id]

    def test_reply_to_missing_post_rejected(self):
        board = BulletinBoard()
        with pytest.raises(DatabaseError):
            board.post("school.courses", "a", "s", "b", in_reply_to=99)

    def test_read_missing_post(self):
        with pytest.raises(DatabaseError):
            BulletinBoard().read(1)


class TestQuestions:
    def test_multiple_choice(self):
        q = MultipleChoiceQuestion("53 bytes?", ["yes", "no"], correct=0,
                                   points=2.0)
        assert q.grade(0) == 2.0
        assert q.grade(1) == 0.0
        with pytest.raises(ValueError):
            MultipleChoiceQuestion("x", ["a"], correct=5)

    def test_numeric_with_tolerance(self):
        q = NumericQuestion("cell size?", answer=53, tolerance=0.5)
        assert q.grade(53.2) == 1.0
        assert q.grade(52.0) == 0.0
        assert q.grade("53") == 1.0
        assert q.grade("not a number") == 0.0

    def test_text_partial_credit(self):
        q = TextQuestion("describe a cell", keywords=["header", "payload"],
                         points=2.0)
        assert q.grade("a header and a payload") == 2.0
        assert q.grade("just the header") == 1.0
        assert q.grade(42) == 0.0


class TestExerciseService:
    def make_service(self):
        service = ExerciseService()
        service.add(Exercise(
            exercise_id="ex1", course_code="ELG5376", title="Cells",
            questions=[
                MultipleChoiceQuestion("53 bytes?", ["yes", "no"], 0),
                NumericQuestion("payload size?", 48),
            ]))
        return service

    def test_describe_hides_answers(self):
        service = self.make_service()
        desc = service.get("ex1").describe()
        assert desc["max_score"] == 2.0
        for q in desc["questions"]:
            assert "correct" not in q and "answer" not in q

    def test_submit_and_best_score(self):
        service = self.make_service()
        first = service.submit("ex1", "S1", [0, 40])
        assert first["score"] == 1.0
        second = service.submit("ex1", "S1", [0, 48])
        assert second["score"] == 2.0 and second["best"] == 2.0
        worse = service.submit("ex1", "S1", [1, 40])
        assert worse["best"] == 2.0  # best is sticky

    def test_wrong_answer_count_rejected(self):
        service = self.make_service()
        with pytest.raises(DatabaseError):
            service.submit("ex1", "S1", [0])

    def test_standings_ranked(self):
        service = self.make_service()
        service.submit("ex1", "S2", [0, 48])
        service.submit("ex1", "S1", [0, 40])
        rows = service.standings("ex1")
        assert rows[0]["student_number"] == "S2"
        assert rows[1]["student_number"] == "S1"

    def test_duplicate_and_empty_rejected(self):
        service = self.make_service()
        with pytest.raises(DatabaseError):
            service.add(Exercise(exercise_id="ex1", course_code="c",
                                 title="dup", questions=[
                                     NumericQuestion("x", 1)]))
        with pytest.raises(DatabaseError):
            service.add(Exercise(exercise_id="ex2", course_code="c",
                                 title="empty"))

    def test_list_for_course(self):
        service = self.make_service()
        assert service.list_for_course("ELG5376")[0]["exercise_id"] == "ex1"
        assert service.list_for_course("OTHER") == []


class TestDiscussion:
    def test_mail_roundtrip_and_drain(self):
        d = DiscussionService()
        d.send_mail("ada", "facilitator", "help!", now=1.0)
        inbox = d.read_mail("facilitator")
        assert len(inbox) == 1 and inbox[0].sender == "ada"
        assert d.read_mail("facilitator") == []

    def test_conference_membership_enforced(self):
        d = DiscussionService()
        d.open_conference("atm-talk")
        d.join("atm-talk", "ada")
        d.say("atm-talk", "ada", "hello")
        with pytest.raises(DatabaseError):
            d.say("atm-talk", "stranger", "hi")

    def test_transcript_since(self):
        d = DiscussionService()
        d.open_conference("room")
        d.join("room", "a")
        first = d.say("room", "a", "one")
        d.say("room", "a", "two")
        assert [m.body for m in d.transcript("room")] == ["one", "two"]
        assert [m.body for m in d.transcript("room", first.message_id)] == \
            ["two"]

    def test_leave(self):
        d = DiscussionService()
        d.open_conference("room")
        d.join("room", "a")
        d.leave("room", "a")
        assert d.members("room") == []

    def test_unknown_conference(self):
        d = DiscussionService()
        with pytest.raises(DatabaseError):
            d.join("ghost", "a")


class TestFacilitator:
    def test_faq_match(self):
        f = Facilitator()
        f.teach(["atm", "cell"], "53 bytes")
        f.teach(["mheg", "object"], "coded multimedia unit")
        assert f.ask("S1", "How big is an ATM cell?") == "53 bytes"
        assert f.ask("S1", "What is an MHEG object?") == \
            "coded multimedia unit"

    def test_best_overlap_wins(self):
        f = Facilitator()
        f.teach(["atm"], "general ATM answer")
        f.teach(["atm", "cell", "header"], "header answer")
        assert f.ask("S1", "what is in the atm cell header") == \
            "header answer"

    def test_unmatched_queued(self):
        f = Facilitator()
        assert f.ask("S1", "what about quantum teleportation") is None
        assert f.pending == [("S1", "what about quantum teleportation")]

    def test_answer_pending(self):
        f = Facilitator()
        f.ask("S1", "hard question")
        out = f.answer_pending(lambda s, q: f"dear {s}: it depends")
        assert out == [("S1", "hard question", "dear S1: it depends")]
        assert f.pending == []
        assert f.answered == 1
