"""State-machine tests for the navigator application (Figs 5.3-5.7)."""

import pytest

from repro.core import MitsSystem
from repro.navigator.navigator import (
    FACILITIES, NAVIGATOR_VERSION, NavigatorState, SCHOOL_INTRODUCTION_REF,
)
from repro.util.errors import PresentationError


@pytest.fixture()
def mits():
    system = MitsSystem(topology="star")
    intro = system.production.center.produce_video(
        SCHOOL_INTRODUCTION_REF, seconds=0.5)
    system.publish_media(intro)
    return system


@pytest.fixture()
def nav(mits):
    return mits.add_user("user1").navigator


class TestEntryScreen:
    def test_about_works_before_login(self, nav):
        nav.start()
        info = nav.about()
        assert info["version"] == NAVIGATOR_VERSION
        assert set(info["facilities"]) == set(FACILITIES)

    def test_school_introduction_streams_before_login(self, mits, nav):
        nav.start()
        rx = nav.watch_school_introduction()
        mits.sim.run(until=mits.sim.now + 30)
        assert rx.finished and len(rx.data) > 500

    def test_login_only_from_entry(self, mits, nav):
        nav.start()
        nav.register("Ada")
        mits.sim.run(until=mits.sim.now + 5)
        assert nav.state is NavigatorState.MAIN
        with pytest.raises(PresentationError):
            nav.login("S1000")

    def test_register_only_from_entry(self, mits, nav):
        nav.start()
        nav.register("Ada")
        mits.sim.run(until=mits.sim.now + 5)
        with pytest.raises(PresentationError):
            nav.register("Again")


class TestGuards:
    def test_facilities_require_login(self, nav):
        nav.start()
        with pytest.raises(PresentationError):
            nav.facilities()
        with pytest.raises(PresentationError):
            nav.browse_library()
        with pytest.raises(PresentationError):
            nav.update_profile(address="x")

    def test_leave_classroom_requires_session(self, mits, nav):
        nav.start()
        nav.register("Ada")
        mits.sim.run(until=mits.sim.now + 5)
        with pytest.raises(PresentationError):
            nav.leave_classroom()

    def test_school_features_require_school_connection(self, mits):
        from repro.database.api import DatabaseClient
        from repro.navigator.navigator import Navigator
        bare = Navigator(mits.add_user("user2").client, school=None,
                         sim=mits.sim)
        bare.start()
        bare.register("NoSchool")
        mits.sim.run(until=mits.sim.now + 5)
        with pytest.raises(PresentationError):
            bare.ask_facilitator("anything?")


class TestTraceAndExit:
    def test_trace_records_screens(self, mits, nav):
        nav.start()
        nav.about()
        nav.register("Ada")
        mits.sim.run(until=mits.sim.now + 5)
        nav.exit()
        events = [event for _, event in nav.trace]
        assert "welcome-video" in events
        assert "about" in events
        assert "exit" in events

    def test_exit_resets_to_entry(self, mits, nav):
        nav.start()
        nav.register("Ada")
        mits.sim.run(until=mits.sim.now + 5)
        nav.exit()
        assert nav.state is NavigatorState.ENTRY
        assert nav.student is None
        # a fresh login works again
        back = []
        nav.start()
        nav.login("S1000", on_done=back.append)
        mits.sim.run(until=mits.sim.now + 5)
        assert back and back[0]["name"] == "Ada"
