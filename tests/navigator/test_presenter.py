"""Tests for the courseware presenter (standalone mode)."""

import pytest

from repro.authoring import (
    CoursewareEditor, HyperDocument, InteractiveDocument, NavigationLink,
    Page, PageItem, Scene, SceneObject, Section, TimelineEntry,
)
from repro.media.production import MediaProductionCenter
from repro.navigator.presenter import CoursewarePresenter
from repro.util.errors import PresentationError


def make_imd_blob(catalog=None):
    doc = InteractiveDocument("course", title="Demo")
    scene = Scene(name="sc", objects=[
        SceneObject(name="clip", kind="video", content_ref="vid-1"),
        SceneObject(name="caption", kind="text", content_ref="txt-1"),
        SceneObject(name="skip", kind="choice", label="Skip")])
    scene.timeline.add(TimelineEntry("clip", 0.0, 2.0))
    scene.timeline.add(TimelineEntry("caption", 0.5, 1.5))
    scene.behavior.when_selected("skip", ("stop", "clip"),
                                 ("stop", "caption"))
    doc.add_section(Section(name="s", scenes=[scene]))
    compiled = CoursewareEditor("course", catalog=catalog).compile_imd(doc)
    return compiled.encode()


def local_presenter():
    presenter = CoursewarePresenter(
        local_resolver=lambda key: b"media:" + key.encode())
    presenter.load_blob(make_imd_blob())
    presenter.preload()
    return presenter


class TestLoading:
    def test_load_finds_root_and_descriptor(self):
        presenter = local_presenter()
        assert presenter.root is not None
        assert presenter.descriptor is not None

    def test_content_refs_enumerated(self):
        presenter = CoursewarePresenter(local_resolver=lambda key: b"x")
        presenter.load_blob(make_imd_blob())
        assert presenter.content_refs() == ["txt-1", "vid-1"]

    def test_preload_counts_bytes(self):
        presenter = local_presenter()
        assert presenter.load_stats["objects"] == 2
        assert presenter.load_stats["bytes"] > 0

    def test_non_container_rejected(self):
        from repro.mheg import GenericValueClass, MhegCodec
        from repro.mheg.identifiers import MhegIdentifier
        blob = MhegCodec().encode(
            GenericValueClass(identifier=MhegIdentifier("x", 1), value=1))
        with pytest.raises(PresentationError):
            CoursewarePresenter().load_blob(blob)

    def test_negotiation_blocks_unsupported_courseware(self):
        presenter = CoursewarePresenter(local_resolver=lambda key: b"x")
        presenter.engine.capabilities["decoders"] = ["STXT"]  # no video
        with pytest.raises(PresentationError):
            presenter.load_blob(make_imd_blob())


class TestPlayback:
    def test_visibility_follows_timeline(self):
        presenter = local_presenter()
        presenter.start()
        assert "clip" in presenter.visible()
        assert "caption" not in presenter.visible()
        presenter.advance(1.0)
        assert set(presenter.visible()) >= {"clip", "caption"}
        presenter.advance(2.0)
        assert "clip" not in presenter.visible()

    def test_clickable_lists_choices_only(self):
        presenter = local_presenter()
        presenter.start()
        assert presenter.clickable() == ["skip"]

    def test_click_dispatches(self):
        presenter = local_presenter()
        presenter.start()
        presenter.click("skip")
        assert "clip" not in presenter.visible()

    def test_click_unknown_raises(self):
        presenter = local_presenter()
        presenter.start()
        with pytest.raises(PresentationError):
            presenter.click("ghost")

    def test_position_advances_and_stop_returns_it(self):
        presenter = local_presenter()
        presenter.start()
        presenter.advance(1.25)
        assert presenter.position() == pytest.approx(1.25)
        assert presenter.stop() == pytest.approx(1.25)
        assert not presenter.playing

    def test_resume_fast_forwards(self):
        presenter = local_presenter()
        presenter.start(from_position=1.0)
        assert presenter.position() == pytest.approx(1.0)
        # at t=1 the caption (0.5..2.0) is on screen
        assert "caption" in presenter.visible()

    def test_playback_completes(self):
        presenter = local_presenter()
        presenter.start()
        presenter.advance(5.0)
        assert not presenter.playing
