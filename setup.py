"""Setuptools shim.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments whose pip/setuptools predate PEP 660 editable wheels.
"""

from setuptools import setup

setup()
