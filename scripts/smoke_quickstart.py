#!/usr/bin/env python
"""Smoke test: run examples/quickstart.py end to end and assert the
deployment produced a non-empty, JSON-serialisable metrics dump.

Run via ``make smoke`` (or directly with ``PYTHONPATH=src``); exits
non-zero on any failure, so it slots into CI after the unit suite.
"""

import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))
sys.path.insert(0, os.path.join(_ROOT, "examples"))

from quickstart import main  # noqa: E402


def run() -> None:
    mits = main()
    snap = mits.snapshot()
    metrics = snap["metrics"]
    assert metrics, "metrics dump is empty"
    for component in ("simulator", "link", "vc", "connection", "mheg"):
        assert component in metrics, f"no {component!r} metrics recorded"
    events = metrics["simulator"]["events_run"][0]["value"]
    assert events > 0, "simulator recorded no events"
    delay_hists = metrics["vc"]["pdu_delay_seconds"]
    assert any(h["count"] > 0 for h in delay_hists), \
        "no per-VC delay samples recorded"
    payload = json.dumps(metrics)
    print(f"smoke ok: {events} events, {len(delay_hists)} VC delay "
          f"histograms, metrics dump {len(payload)} bytes")


if __name__ == "__main__":
    run()
