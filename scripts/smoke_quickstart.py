#!/usr/bin/env python
"""Smoke test: run examples/quickstart.py end to end and assert the
deployment produced a non-empty, JSON-serialisable metrics dump, at
least one cross-site trace (navigator → transport → content server →
MHEG under a single trace_id), and a clean default-SLO verdict.

Run via ``make smoke`` (or directly with ``PYTHONPATH=src``); exits
non-zero on any failure, so it slots into CI after the unit suite.
"""

import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))
sys.path.insert(0, os.path.join(_ROOT, "examples"))

from quickstart import main  # noqa: E402

from repro.obs import SloMonitor  # noqa: E402

#: span-name prefixes that must appear in one trace for it to count as
#: an end-to-end Course-On-Demand request
REQUIRED_LAYERS = {"navigator", "rpc", "db", "mheg"}


def _layer(span_name: str) -> str:
    return span_name.split(".", 1)[0].split(":", 1)[0]


def check_cross_site_trace(tracer) -> int:
    spans = tracer.spans
    assert spans, "tracing was enabled but no spans were recorded"
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    for trace_id, group in sorted(by_trace.items()):
        layers = {_layer(s.name) for s in group}
        if not REQUIRED_LAYERS <= layers:
            continue
        # the tree must be connected: every non-root span's parent is
        # another span of the same trace
        ids = {s.span_id for s in group}
        roots = [s for s in group if s.parent_id is None]
        assert roots, f"trace {trace_id} has no root span"
        for s in group:
            assert s.parent_id is None or s.parent_id in ids, \
                f"span {s.name} of trace {trace_id} has a dangling parent"
        return trace_id
    raise AssertionError(
        f"no trace spans all of {sorted(REQUIRED_LAYERS)}; "
        f"saw {[sorted({_layer(s.name) for s in g}) for g in by_trace.values()]}")


def run() -> None:
    mits = main()
    snap = mits.snapshot()
    metrics = snap["metrics"]
    assert metrics, "metrics dump is empty"
    for component in ("simulator", "link", "vc", "connection", "mheg"):
        assert component in metrics, f"no {component!r} metrics recorded"
    events = metrics["simulator"]["events_run"][0]["value"]
    assert events > 0, "simulator recorded no events"
    delay_hists = metrics["vc"]["pdu_delay_seconds"]
    assert any(h["count"] > 0 for h in delay_hists), \
        "no per-VC delay samples recorded"

    trace_id = check_cross_site_trace(mits.sim.tracer)

    ts = snap["timeseries"]
    assert ts["enabled"], "telemetry sampler is off in the quickstart"
    assert ts["samples"] > 1, "sampler never ticked on the sim clock"
    sampled = {(s["component"], s["name"]) for s in ts["series"]}
    assert ("simulator", "events_run") in sampled, \
        "no event-rate series sampled"

    results = SloMonitor().evaluate(metrics)
    failures = [r.slo.name for r in results if not r.ok]
    assert not failures, f"default SLOs violated: {failures}"
    assert snap["slo"]["pass"], "snapshot SLO section disagrees"

    audit = snap["audit"]
    assert audit["checks"] > 0, "conservation audit ran no checks"
    assert audit["ok"], \
        f"conservation violations in the quickstart: {audit['violations']}"
    wd = snap["watchdog"]
    assert wd["enabled"], "watchdog is off in the quickstart"
    assert not wd["alerts"], f"watchdog alerts on a clean run: {wd['alerts']}"

    payload = json.dumps(snap)
    print(f"smoke ok: {events} events, {len(delay_hists)} VC delay "
          f"histograms, cross-site trace {trace_id} "
          f"({len(mits.sim.tracer.by_trace(trace_id))} spans), "
          f"{ts['samples']} telemetry samples over {len(ts['series'])} "
          f"series, {sum(1 for r in results if not r.skipped)} SLOs "
          f"judged, {audit['checks']} conservation checks clean, "
          f"snapshot {len(payload)} bytes")


if __name__ == "__main__":
    run()
