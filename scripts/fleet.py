#!/usr/bin/env python
"""Fleet runner: N scenario shards in parallel, one merged view.

The thesis's trial ran telelearning across many OCRInet sites at
once; this driver reproduces that shape at benchmark scale.  It runs
N scenarios — or N seed-derived shards of one scenario, seeds
``seed*1000 + shard`` like the fault plans — across a multiprocessing
pool.  Each worker streams its observability to an ``obs_*.jsonl``
sidecar (bounded memory, full fidelity) and reports its wall time,
peak RSS, and obs-overhead attribution back over the pool; the parent
folds every sidecar through ``repro.obs.merge`` into one merged fleet
archive with per-shard attribution, renders the merged SLO/audit
verdicts, and exits non-zero if the merged audit found violations.

Wall-clock facts deliberately travel via the pool result, never the
obs stream — the stream stays byte-deterministic per seed.

Usage::

    python scripts/fleet.py                      # 4 classroom shards
    python scripts/fleet.py classroom quickstart faulty_classroom
    python scripts/fleet.py classroom --shards 8 --seed 2024
    make fleet FLEET_FLAGS="--shards 4"

Inspect the result with any renderer::

    python -m repro.obs report benchmarks/out/fleet/fleet_classroom.json
    python -m repro.obs top    benchmarks/out/fleet/fleet_classroom.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import resource
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

DEFAULT_OUT = os.path.join(_ROOT, "benchmarks", "out", "fleet")


def run_shard(spec: Dict[str, Any]) -> Dict[str, Any]:
    """One worker: run a scenario shard, stream its sidecar, and
    return the wall-clock facts the stream must not carry.

    Runs in a pool child with ``maxtasksperchild=1``, so
    ``ru_maxrss`` is genuinely this shard's peak, not a high-water
    mark inherited from a previous task.
    """
    from repro.core.scenarios import build

    t0 = time.perf_counter()
    run = build(spec["scenario"], accounting=True,
                seed=spec["seed"], stream=spec["path"])
    run.run_to_horizon()
    mits = run.mits
    sink = getattr(mits, "sink", None)
    if sink is not None and not sink.closed:
        sink.close()
    wall = time.perf_counter() - t0
    meter = getattr(mits, "meter", None)
    return {
        "scenario": spec["scenario"],
        "seed": spec["seed"],
        "shard": spec["shard"],
        "path": spec["path"],
        "wall_seconds": wall,
        # Linux reports ru_maxrss in KiB
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "overhead": meter.report() if meter is not None else None,
        "sim_time": mits.sim.now,
        "events_run": mits.sim.events_run,
    }


def shard_specs(scenarios: List[str], shards: int, seed: int,
                out_dir: str) -> List[Dict[str, Any]]:
    """The work list: explicit scenarios run one shard each; a single
    scenario fans out into ``shards`` seed-derived shards."""
    if len(scenarios) > 1:
        plan: List[Tuple[str, int]] = [(s, i)
                                       for i, s in enumerate(scenarios)]
    else:
        plan = [(scenarios[0], i) for i in range(shards)]
    specs = []
    for scenario, shard in plan:
        name = f"{scenario}_s{shard}"
        specs.append({
            "scenario": scenario,
            "shard": shard,
            "seed": seed * 1000 + shard,
            "name": name,
            "path": os.path.join(out_dir, f"obs_{name}.jsonl"),
        })
    return specs


def run_fleet(scenarios: List[str], *, shards: int = 4,
              seed: int = 1996, procs: Optional[int] = None,
              out_dir: str = DEFAULT_OUT,
              name: Optional[str] = None) -> Dict[str, Any]:
    """Run the fleet and return the merged archive (also written to
    ``<out_dir>/fleet_<name>.json``)."""
    from repro.obs.merge import load_shard, merge_archives, write_merged

    os.makedirs(out_dir, exist_ok=True)
    specs = shard_specs(scenarios, shards, seed, out_dir)
    procs = procs or min(len(specs), os.cpu_count() or 2)
    # fork keeps worker start cheap; maxtasksperchild=1 keeps each
    # child's ru_maxrss attributable to exactly one shard
    ctx = multiprocessing.get_context("fork")
    if procs > 1:
        with ctx.Pool(processes=procs, maxtasksperchild=1) as pool:
            results = pool.map(run_shard, specs)
    else:
        results = [run_shard(spec) for spec in specs]

    loaded = []
    for spec, res in zip(specs, results):
        extras = {
            "name": spec["name"],
            "scenario": res["scenario"],
            "seed": res["seed"],
            "wall_seconds": res["wall_seconds"],
            "peak_rss_kb": res["peak_rss_kb"],
            "overhead": res["overhead"],
        }
        loaded.append(load_shard(spec["path"], extras=extras))

    fleet_name = name or (scenarios[0] if len(scenarios) == 1
                          else "mixed")
    merged = merge_archives(loaded, name=f"fleet_{fleet_name}")
    path = write_merged(
        merged, os.path.join(out_dir, f"fleet_{fleet_name}.json"))
    merged["_path"] = path
    return merged


def render_fleet(merged: Dict[str, Any]) -> str:
    lines = [f"== fleet: {merged['name']} =="]
    lines.append(f"   {len(merged['shards'])} shard(s), merged "
                 f"sim_time {merged['sim_time']:.1f}s, "
                 f"{merged['events_run']} events")
    header = (f"   {'shard':<24} {'seed':>8} {'sim_t':>7} "
              f"{'events':>8} {'wall s':>7} {'rss KiB':>8} {'obs%':>6}")
    lines.append(header)
    for s in merged["shards"]:
        obs = s.get("obs_overhead_pct")
        obs_txt = "-" if obs is None else f"{obs:.1f}"
        lines.append(
            f"   {s['name']:<24} {str(s.get('seed', '-')):>8} "
            f"{s['sim_time']:>7.1f} {s['events_run']:>8} "
            f"{s.get('wall_seconds', 0.0):>7.2f} "
            f"{s.get('peak_rss_kb', 0):>8} {obs_txt:>6}")
    slo = merged.get("slo") or {}
    lines.append(f"   merged slo verdict: {slo.get('verdict', '?')} "
                 f"({sum(1 for r in slo.get('results', []) if r['ok'])}"
                 f"/{len(slo.get('results', []))} objectives ok)")
    audit = merged.get("audit")
    if audit is not None:
        lines.append(f"   merged audit: {audit.get('checks', 0)} "
                     f"checks, {len(audit.get('violations', []))} "
                     f"violations")
        for v in audit.get("violations", []):
            lines.append(f"     VIOLATION {v}")
    overhead = merged.get("overhead")
    if overhead is not None:
        lines.append(f"   fleet obs overhead: "
                     f"{overhead['obs_overhead_pct']:.1f}% of "
                     f"{overhead['wall_seconds']:.2f}s total compute")
    total_rss = sum(s.get("peak_rss_kb", 0) for s in merged["shards"])
    lines.append(f"   summed peak rss: {total_rss} KiB across shards")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run scenario shards in parallel and merge their "
        "observability into one fleet archive.")
    parser.add_argument("scenarios", nargs="*", default=["classroom"],
                        help="scenario name(s); one name fans out "
                        "into --shards seed-derived shards "
                        "(default: classroom)")
    parser.add_argument("--shards", type=int, default=4,
                        help="shards when one scenario is given "
                        "(default: 4)")
    parser.add_argument("--seed", type=int, default=1996,
                        help="base seed; shard i runs seed*1000+i")
    parser.add_argument("--procs", type=int, default=None,
                        help="pool size (default: min(shards, cpus))")
    parser.add_argument("--out-dir", default=DEFAULT_OUT)
    parser.add_argument("--name", default=None,
                        help="fleet archive name (default: scenario)")
    parser.add_argument("--json", action="store_true",
                        help="print the merged archive as JSON instead "
                        "of the summary table")
    args = parser.parse_args(argv)

    scenarios = args.scenarios or ["classroom"]
    merged = run_fleet(scenarios, shards=args.shards, seed=args.seed,
                       procs=args.procs, out_dir=args.out_dir,
                       name=args.name)
    path = merged.pop("_path")
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        print(render_fleet(merged))
        print(f"\nwrote {path}")
        print(f"render with: python -m repro.obs report {path}")
    audit = merged.get("audit")
    return 1 if (audit is not None and audit.get("violations")) else 0


if __name__ == "__main__":
    sys.exit(main())
