#!/usr/bin/env python
"""Differential fidelity check: batched vs per-cell, attributed.

For every named scenario (or the subset given on the command line)
this runs the scripted load twice — ``fidelity="cell"`` (the legacy
one-event-per-cell loop) and ``fidelity="batched"`` (the cell-train
fast path) — and compares the runs three ways:

* byte equality of the canonical snapshots (the contract
  ``tests/perf/test_equivalence.py`` enforces in CI);
* the :mod:`repro.obs.diff` differential, whose ranked attribution
  table is printed per scenario and whose
  ``deterministic_delta_count`` must be zero;
* the wall-clock/event-count vector, reported for context (never
  gated here — hardware noise belongs to bench_gate).

``--hybrid`` additionally compares batched against
``fidelity="hybrid"`` under the weaker contract that mode carries:
matching SLO verdict and ledger grand totals within 1%.

The machine-readable payloads land in ``benchmarks/out/`` as
``diff_fidelity_<scenario>.json``.  Exit status 0 iff every gated
comparison holds.  Run via ``make diff-fidelity``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.core.scenarios import SCENARIOS, build  # noqa: E402
from repro.obs.diff import render_attribution_table, write_diff  # noqa: E402
from repro.obs.equivalence import (  # noqa: E402
    fidelity_diff,
    ledger_totals,
    snapshots_equivalent,
)

#: hybrid ledger totals may deviate this much, relatively, per total
HYBRID_LEDGER_TOLERANCE = 0.01


def _run(name: str, fidelity: str, **kwargs):
    t0 = time.perf_counter()
    run = build(name, fidelity=fidelity, **kwargs)
    run.run_to_horizon()
    wall = time.perf_counter() - t0
    return run.mits.snapshot(), wall


def check_scenario(name: str, out_dir: str) -> bool:
    cell, wall_cell = _run(name, "cell")
    batched, wall_batched = _run(name, "batched")
    payload = fidelity_diff(cell, batched, name=name)
    write_diff(payload, out_dir, f"fidelity_{name}")
    identical = snapshots_equivalent(cell, batched)
    deltas = payload["deterministic_delta_count"]
    speedup = wall_cell / wall_batched if wall_batched > 0 else 0.0
    print(f"scenario {name}: cell vs batched")
    print(f"  canonical snapshots : "
          f"{'byte-identical' if identical else 'DIVERGED'}")
    print(f"  deterministic deltas: {deltas}")
    print(f"  events_run          : {cell['events_run']} -> "
          f"{batched['events_run']} "
          f"({batched['events_run'] - cell['events_run']:+d} "
          f"continuation/deferral events)")
    print(f"  wall (uncontrolled) : {wall_cell:.3f}s -> "
          f"{wall_batched:.3f}s  ({speedup:.2f}x)")
    print()
    print(render_attribution_table(payload))
    print()
    return identical and deltas == 0


def check_hybrid(name: str, out_dir: str) -> bool:
    batched, _ = _run(name, "batched", accounting=True)
    hybrid, _ = _run(name, "hybrid", accounting=True)
    payload = fidelity_diff(batched, hybrid, name=f"{name}-hybrid")
    write_diff(payload, out_dir, f"fidelity_{name}_hybrid")
    verdict_ok = hybrid["slo"]["verdict"] == batched["slo"]["verdict"]
    totals_b, totals_h = ledger_totals(batched), ledger_totals(hybrid)
    worst = 0.0
    for key, want in totals_b.items():
        got = totals_h.get(key, 0)
        worst = max(worst, abs(got - want) / max(abs(want), 1.0))
    ledger_ok = worst <= HYBRID_LEDGER_TOLERANCE
    print(f"scenario {name}: batched vs hybrid (toleranced contract)")
    print(f"  SLO verdict         : {batched['slo']['verdict']} -> "
          f"{hybrid['slo']['verdict']} "
          f"({'match' if verdict_ok else 'MISMATCH'})")
    print(f"  ledger worst delta  : {worst * 100:.3f}% "
          f"(tolerance {HYBRID_LEDGER_TOLERANCE * 100:.0f}%)")
    print()
    print(render_attribution_table(payload))
    print()
    return verdict_ok and ledger_ok


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff batched fidelity against the per-cell loop.")
    parser.add_argument("scenarios", nargs="*",
                        help=f"subset to check (default: all of "
                             f"{sorted(SCENARIOS)})")
    parser.add_argument("--hybrid", action="store_true",
                        help="also check hybrid fidelity against its "
                             "toleranced contract")
    parser.add_argument("--out-dir", default=os.path.join(
        _ROOT, "benchmarks", "out"),
        help="where diff_fidelity_*.json payloads land")
    args = parser.parse_args(argv)
    names = args.scenarios or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenarios {unknown} "
                     f"(have: {sorted(SCENARIOS)})")
    os.makedirs(args.out_dir, exist_ok=True)
    ok = True
    for name in names:
        ok = check_scenario(name, args.out_dir) and ok
        if args.hybrid:
            ok = check_hybrid(name, args.out_dir) and ok
    print("DIFF FIDELITY: " + ("equivalent" if ok else "DIVERGED"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
