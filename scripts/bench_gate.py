#!/usr/bin/env python
"""Perf-regression gate: benchmark scenarios against tracked baselines.

Runs every named scenario in :mod:`repro.core.scenarios` with the
event-loop profiler installed, extracts a small metric vector per
scenario — events/sec, wall time, events run, simulated time reached,
and peak time-series values (simulator queue depth, link queue
occupancy, player buffer) — and compares it against the tracked
``BENCH_<scenario>.json`` baseline at the repo root.

Verdict rules, per metric:

* *perf* metrics (``wall_seconds`` up, ``events_per_sec`` down) fail
  when they regress beyond ``--wall-tolerance`` (generous by default —
  wall clock is noisy).  ``--no-wall`` skips them entirely for CI
  runners whose hardware differs from the baseline machine.
* *deterministic* metrics (``events_run``, ``sim_time``, peaks) are
  reproducible given the seed, so any drift beyond ``--tolerance``
  fails — if the drift is an intended consequence of a change, rerun
  with ``--update`` to accept the new baseline.

``--update`` (re)writes the baselines and exits 0.  A missing baseline
is an error (exit 2) so new scenarios can't silently skip the gate.
On failure the diff table shows baseline vs current per metric.

Each run also refreshes the ``metrics_/trace_/timeseries_`` sidecars
under ``benchmarks/out/`` (override with ``BENCH_METRICS_DIR``), so a
failed gate is debuggable offline with ``python -m repro.obs``.  The
previous sidecar (when present) is diffed instrument-by-instrument via
:meth:`MetricsRegistry.delta` and the largest absolute movements are
printed next to the percentage table.  Every scenario is additionally
run through the :class:`ConservationAuditor`; any violation fails the
gate regardless of the perf verdicts.

On any gate failure the full differential comparison
(:mod:`repro.obs.diff`) between the baseline — the tracked
``BENCH_<scenario>.json`` vector + ``profile_top``, backfilled with
the previous run's archived sidecars when present — and the failing
run is printed (ranked attribution: span kinds, critical-path
components, profiler callsites, largest mover first) and written as
``diff_gate_<scenario>.json`` next to the sidecars, so a regression
report always names the layer that moved, not just the headline
number.

Testing hook: ``BENCH_GATE_HANDICAP=<factor>`` scales measured wall
time (2.0 = pretend the run took twice as long), which is how the test
suite injects a regression to prove the gate trips.

Run via ``make bench-gate``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.core.scenarios import SCENARIOS, build  # noqa: E402
from repro.obs import diff as run_diff  # noqa: E402
from repro.obs.audit import ConservationAuditor  # noqa: E402
from repro.obs.export import dump_observability  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

#: (metric, direction, class) — direction says which way is a
#: regression: "up" = larger is worse, "down" = smaller is worse,
#: "drift" = any change beyond tolerance is suspect.
METRIC_SPECS: Tuple[Tuple[str, str, str], ...] = (
    ("events_per_sec", "down", "wall"),
    ("wall_seconds", "up", "wall"),
    ("events_run", "drift", "deterministic"),
    ("sim_time", "drift", "deterministic"),
    # gated against an absolute per-scenario floor (see
    # MIN_EVENTS_PER_SIM_SEC / --min-events-per-sec), not the baseline:
    # the deterministic load-per-simulated-second assertion survives
    # --no-wall because both numerator and denominator are seeded
    ("events_per_sim_sec", "min", "deterministic"),
    ("peak_queue_depth", "up", "deterministic"),
    ("peak_link_queue", "up", "deterministic"),
    ("peak_player_buffer", "drift", "deterministic"),
    # gated against the --max-obs-overhead absolute ceiling, not the
    # baseline: what full-fidelity observability costs vs obs-off
    ("obs_overhead_pct", "abs", "wall"),
    # process peak RSS at the end of the scenario's gate run (KiB on
    # Linux) — the memory axis of ROADMAP item 3's sessions vs
    # events/sec vs RSS extrapolation curve.  ru_maxrss is a process
    # high-water mark, so within one gate invocation later scenarios
    # inherit the peak of earlier ones; the trend across PRs is the
    # signal, hence class "wall" (machine-dependent, skipped by
    # --no-wall in CI).
    ("peak_rss_kb", "up", "wall"),
)

#: default ceiling (percent) for the obs-on vs obs-off wall delta
MAX_OBS_OVERHEAD_PCT = 15.0

#: per-scenario floors for ``events_run / sim_time`` — the scripted
#: load each scenario must keep scheduling (per-cell-equivalent
#: events, so the batched fast path is held to the same bar as the
#: legacy per-cell loop it replaced).  Deterministic given the seed;
#: set ~10% under the recorded value so only a real loss of simulated
#: work (a silently skipped stream, an unscheduled classroom) trips
#: it, not counter jitter from an intended change.
MIN_EVENTS_PER_SIM_SEC: Dict[str, float] = {
    "quickstart": 240.0,       # recorded 270.0 ev/sim-sec
    "classroom": 230.0,        # recorded 258.9
    "faulty-classroom": 250.0,  # recorded 285.2
}


def baseline_path(scenario: str, out_dir: str) -> str:
    return os.path.join(out_dir, f"BENCH_{scenario}.json")


def measure_obs_overhead(scenario: str, pairs: int = 3) -> float:
    """End-to-end obs cost: full-fidelity obs-on vs obs-off wall delta.

    Dedicated run pairs without the profiler (its wrapper would
    dominate the comparison): one run with the default observability
    stack (tracing, telemetry, watchdog, self-metering), one with all
    of it off.  The delta catches costs the in-process meter cannot
    see from inside — allocation and cache pressure included.

    A single pair is hopelessly noisy on sub-second scenarios (a
    scheduler hiccup reads as 20% "overhead"), so the minimum over
    *pairs* interleaved pairs is reported: noise only ever inflates
    the delta, so the smallest observation is the best estimate.
    Clamped at 0 — a faster obs-on run is noise, not negative cost.
    """
    best = None
    for _ in range(pairs):
        t0 = time.perf_counter()
        build(scenario).run_to_horizon()
        wall_on = time.perf_counter() - t0
        t0 = time.perf_counter()
        build(scenario, tracing=False, telemetry_interval=None,
              watchdog=False, meter=False).run_to_horizon()
        wall_off = time.perf_counter() - t0
        if wall_off <= 0:
            return 0.0
        pct = max(0.0, (wall_on - wall_off) / wall_off * 100.0)
        best = pct if best is None else min(best, pct)
    return best or 0.0


def _peak_rss_kb() -> int:
    """Process peak RSS so far (KiB on Linux; 0 where unavailable)."""
    try:
        import resource
    except ImportError:
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def measure(scenario: str) -> Dict[str, Any]:
    """Run one scenario to its horizon and extract the metric vector."""
    handicap = float(os.environ.get("BENCH_GATE_HANDICAP", "1.0"))
    out_dir = os.environ.get(
        "BENCH_METRICS_DIR", os.path.join(_ROOT, "benchmarks", "out"))
    os.makedirs(out_dir, exist_ok=True)
    stream_path = os.path.join(out_dir, f"obs_gate_{scenario}.jsonl")
    t0 = time.perf_counter()
    run = build(scenario, profile=True, stream=stream_path)
    run.run_to_horizon()
    wall = (time.perf_counter() - t0) * handicap
    mits = run.mits
    sampler = mits.sampler
    profile = mits.profiler.snapshot(top=5)
    violations = ConservationAuditor(mits).check()

    def peak(component: str, name: str) -> float:
        value = sampler.peak(component, name)
        return float(value) if value is not None else 0.0

    metrics = {
        "events_run": mits.sim.events_run,
        "sim_time": round(mits.sim.now, 6),
        "events_per_sim_sec": round(mits.sim.events_run / mits.sim.now, 1)
        if mits.sim.now > 0 else 0.0,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(mits.sim.events_run / wall, 1)
        if wall > 0 else 0.0,
        "peak_queue_depth": peak("simulator", "queue_depth"),
        "peak_link_queue": peak("link", "queue_occupancy"),
        "peak_player_buffer": peak("player", "buffer_frames"),
        "obs_overhead_pct": round(measure_obs_overhead(scenario), 2),
        "peak_rss_kb": _peak_rss_kb(),
    }
    # the previous run's full archive (metrics + trace + accounting
    # sidecars), read eagerly before dump_observability overwrites it:
    # it backfills the BENCH baseline for the failure-path diff
    prev_archive = _previous_archive(scenario, out_dir)
    instrument_drift = MetricsRegistry.delta(
        prev_archive.metrics, mits.sim.metrics.report()) \
        if prev_archive is not None else None
    dump_observability(mits, f"gate_{scenario}", out_dir, profile=profile)
    return {
        "scenario": scenario,
        "metrics": metrics,
        "audit_violations": [v.to_dict() for v in violations],
        "instrument_drift": instrument_drift,
        "prev_archive": prev_archive,
        "sidecar_path": os.path.join(out_dir,
                                     f"metrics_gate_{scenario}.json"),
        "out_dir": out_dir,
        "profile_top": [
            {"callsite": h["callsite"], "cum_seconds": h["cum_seconds"],
             "calls": h["calls"]}
            for h in profile["hotspots"]],
    }


def _previous_archive(scenario: str, out_dir: str
                      ) -> Optional[run_diff.RunArchive]:
    path = os.path.join(out_dir, f"metrics_gate_{scenario}.json")
    if not os.path.exists(path):
        return None
    try:
        return run_diff.load_run(path)
    except (OSError, ValueError):
        return None


def explain_failure(scenario: str, baseline_path_: str,
                    current: Dict[str, Any]) -> None:
    """Print the differential attribution for one failed scenario.

    The baseline side is the tracked ``BENCH_<scenario>.json`` (metric
    vector + profile_top) backfilled with the previous gate run's
    archived sidecars (metrics report, spans, SLO verdicts, ledger)
    when those exist; the candidate side is the failing run's fresh
    sidecar set.  The machine-readable payload lands in
    ``diff_gate_<scenario>.json`` next to the sidecars.
    """
    try:
        base = run_diff.load_run(baseline_path_)
    except (OSError, ValueError):
        return
    base.fill_missing(current.get("prev_archive"))
    try:
        cur = run_diff.load_run(current["sidecar_path"])
    except (OSError, ValueError):
        return
    cur.bench = dict(current["metrics"])
    cur.profile = list(current["profile_top"])
    payload = run_diff.diff_runs(base, cur)
    print()
    print(run_diff.render_attribution_table(payload))
    diff_path = run_diff.write_diff(payload, current["out_dir"],
                                    f"gate_{scenario}")
    print(f"  full differential report: {os.path.relpath(diff_path, _ROOT)}"
          f"  (render with `python -m repro.obs diff "
          f"{os.path.relpath(baseline_path_, _ROOT)} "
          f"{os.path.relpath(current['sidecar_path'], _ROOT)}`)")


def judge(scenario: str, base: Dict[str, Any], cur: Dict[str, Any],
          *, tolerance: float, wall_tolerance: float, no_wall: bool,
          max_obs_overhead: float = MAX_OBS_OVERHEAD_PCT,
          min_events_per_sec: Optional[float] = None
          ) -> List[Tuple[str, Any, Any, float, str]]:
    """Rows of ``(metric, baseline, current, delta_frac, verdict)``."""
    rows = []
    base_m, cur_m = base.get("metrics", {}), cur["metrics"]
    for metric, direction, klass in METRIC_SPECS:
        if no_wall and klass == "wall":
            continue
        tol = wall_tolerance if klass == "wall" else tolerance
        b, c = base_m.get(metric), cur_m.get(metric)
        if direction == "min":
            # absolute floor: the baseline column shows the floor, and
            # the verdict ignores the tracked baseline entirely
            floor = (min_events_per_sec
                     if min_events_per_sec is not None
                     else MIN_EVENTS_PER_SIM_SEC.get(scenario))
            if floor is None or c is None:
                continue
            bad = c < floor
            rows.append((metric, floor, c, 0.0, "FAIL" if bad else "ok"))
            continue
        if direction == "abs":
            # absolute ceiling, not baseline-relative: wall deltas this
            # small are noise run-to-run, but a blowout must fail even
            # if the baseline had blown out too
            if c is None:
                continue
            bad = c > max_obs_overhead
            rows.append((metric, b, c, 0.0, "FAIL" if bad else "ok"))
            continue
        if c is None:
            # metric not recorded this run (e.g. no `resource` module
            # for peak_rss_kb) — nothing to judge
            continue
        if b is None:
            rows.append((metric, b, c, 0.0, "NEW"))
            continue
        if b == 0:
            delta = 0.0 if c == 0 else float("inf")
        else:
            delta = (c - b) / abs(b)
        if direction == "up":
            bad = delta > tol
        elif direction == "down":
            bad = delta < -tol
        else:  # drift
            bad = abs(delta) > tol
        rows.append((metric, b, c, delta, "FAIL" if bad else "ok"))
    return rows


def render_diff(scenario: str,
                rows: List[Tuple[str, Any, Any, float, str]]) -> str:
    lines = [f"scenario {scenario}",
             f"  {'metric':<22}{'baseline':>14}{'current':>14}"
             f"{'abs':>12}{'delta':>9}  verdict",
             "  " + "-" * 80]
    for metric, b, c, delta, verdict in rows:
        fmt = lambda v: "-" if v is None else (  # noqa: E731
            f"{v:.4g}" if isinstance(v, float) else str(v))
        abs_s = "-" if b is None or c is None else f"{c - b:+.4g}"
        delta_s = "-" if b is None or delta == float("inf") \
            else f"{delta * 100:+.1f}%"
        lines.append(f"  {metric:<22}{fmt(b):>14}{fmt(c):>14}"
                     f"{abs_s:>12}{delta_s:>9}  {verdict}")
    return "\n".join(lines)


def render_instrument_drift(drift: Dict[str, Dict[str, Any]],
                            top: int = 8) -> str:
    """Largest absolute per-instrument movements vs the previous run."""
    moved = [(key, row) for key, row in drift.items()
             if row["delta"] or "only" in row]
    if not moved:
        return "  (no instrument drift vs previous sidecar)"
    moved.sort(key=lambda kv: abs(kv[1]["delta"]), reverse=True)
    lines = [f"  top instrument drift vs previous run "
             f"({len(moved)} instruments moved):"]
    for key, row in moved[:top]:
        tag = f"  [{row['only']} only]" if "only" in row else ""
        lines.append(f"    {key:<52} {row['before']:>10.4g} -> "
                     f"{row['after']:>10.4g}  ({row['delta']:+.4g}){tag}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark scenarios and gate on tracked baselines.")
    parser.add_argument("scenarios", nargs="*",
                        help=f"subset to run (default: all of "
                             f"{sorted(SCENARIOS)})")
    parser.add_argument("--update", action="store_true",
                        help="write/refresh BENCH_*.json baselines")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative tolerance for deterministic "
                             "metrics (default 0.10)")
    parser.add_argument("--wall-tolerance", type=float, default=0.50,
                        help="relative tolerance for wall-clock "
                             "metrics (default 0.50)")
    parser.add_argument("--no-wall", action="store_true",
                        help="skip wall-clock metrics (CI on unknown "
                             "hardware)")
    parser.add_argument("--max-obs-overhead", type=float,
                        default=MAX_OBS_OVERHEAD_PCT,
                        help="fail when full-fidelity observability "
                             "costs more than this percent of wall vs "
                             "obs-off (default 15)")
    parser.add_argument("--min-events-per-sec", type=float, default=None,
                        help="absolute floor for events_run/sim_time "
                             "(per-cell-equivalent events per simulated "
                             "second; deterministic, so it stays active "
                             "under --no-wall).  Default: the tracked "
                             "per-scenario floors in "
                             "MIN_EVENTS_PER_SIM_SEC")
    parser.add_argument("--out-dir", default=_ROOT,
                        help="directory holding BENCH_*.json "
                             "(default: repo root)")
    args = parser.parse_args(argv)

    names = args.scenarios or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenarios {unknown} "
                     f"(have: {sorted(SCENARIOS)})")

    failed = False
    missing = False
    for name in names:
        print(f"running scenario {name} ...", flush=True)
        current = measure(name)
        violations = current.pop("audit_violations")
        drift = current.pop("instrument_drift")
        diff_context = {key: current.pop(key) for key in
                        ("prev_archive", "sidecar_path", "out_dir")}
        diff_context["metrics"] = current["metrics"]
        diff_context["profile_top"] = current["profile_top"]
        if violations:
            print(f"  AUDIT: {len(violations)} conservation violations")
            for v in violations:
                print(f"    {v['component']}/{v['entity']}: "
                      f"{v['invariant']} expected {v['expected']} "
                      f"actual {v['actual']}")
            failed = True
        path = baseline_path(name, args.out_dir)
        if args.update:
            with open(path, "w") as fh:
                json.dump(current, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"  baseline written: {os.path.relpath(path, _ROOT)}")
            continue
        if not os.path.exists(path):
            print(f"  MISSING baseline {os.path.relpath(path, _ROOT)} "
                  f"— run with --update to create it")
            missing = True
            continue
        with open(path) as fh:
            base = json.load(fh)
        rows = judge(name, base, current, tolerance=args.tolerance,
                     wall_tolerance=args.wall_tolerance,
                     no_wall=args.no_wall,
                     max_obs_overhead=args.max_obs_overhead,
                     min_events_per_sec=args.min_events_per_sec)
        print(render_diff(name, rows))
        if drift is not None:
            print(render_instrument_drift(drift))
        if violations or any(verdict == "FAIL" for *_, verdict in rows):
            failed = True
            explain_failure(name, path, diff_context)

    if failed:
        print("\nBENCH GATE: REGRESSION — see FAIL rows above "
              "(--update accepts intended changes)")
        return 1
    if missing:
        return 2
    if not args.update:
        print("\nBENCH GATE: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
