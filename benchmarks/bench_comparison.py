"""EX.1: HyTime vs MHEG (§2.3) — the paper's baseline comparison.

Three measurements reproduce the section's three claims:

* §2.3.1 authoring/publishing: HyTime documents stay editable text;
  editing an MHEG final form requires decode -> modify -> re-encode.
* §2.3.2 real-time interchange: for the *same information*, the MHEG
  binary final form is smaller and faster to make presentable than the
  SGML text form, and a HyTime document additionally needs address
  resolution and a mapping step before anything can be presented.
* §2.3.3 interaction: MHEG expresses conditional behaviour natively
  (links with trigger + additional conditions, actions); HyTime has
  only the hyperlink.
"""

import pytest

from conftest import build_catalog, build_hyperdoc

from repro.authoring.editor import CoursewareEditor
from repro.hytime import HyTimeEngine
from repro.mheg import MhegCodec
from repro.mheg.classes import LinkClass


@pytest.fixture(scope="module")
def notations(catalog):
    editor = CoursewareEditor("cmp", catalog=catalog)
    doc = build_hyperdoc()
    compiled = editor.compile_hyperdoc(doc)
    return {
        "editor": editor,
        "doc": doc,
        "compiled": compiled,
        "ber": compiled.encode(),
        "sgml": MhegCodec().to_sgml(compiled.container),
        "hytime": editor.to_hytime(doc),
    }


def test_real_time_interchange_mheg_wins(benchmark, notations):
    """§2.3.2: time-to-presentable, MHEG final form vs SGML text of
    the SAME object graph."""
    codec = MhegCodec()
    ber, sgml = notations["ber"], notations["sgml"]

    def decode_ber():
        return codec.decode(ber)

    obj = benchmark(decode_ber)
    import time
    t0 = time.perf_counter()
    for _ in range(50):
        codec.from_sgml(sgml)
    sgml_ms = (time.perf_counter() - t0) / 50 * 1e3
    t0 = time.perf_counter()
    for _ in range(50):
        codec.decode(ber)
    ber_ms = (time.perf_counter() - t0) / 50 * 1e3
    benchmark.extra_info["ber_bytes"] = len(ber)
    benchmark.extra_info["sgml_bytes"] = len(sgml)
    benchmark.extra_info["ber_ms"] = round(ber_ms, 3)
    benchmark.extra_info["sgml_ms"] = round(sgml_ms, 3)
    # the thesis's claim, reproduced: final-form binary interchange is
    # both smaller and faster to present than the publishing text form
    assert len(ber) < len(sgml) / 3
    assert ber_ms < sgml_ms
    assert obj == notations["compiled"].container


def test_hytime_needs_resolution_before_presentation(benchmark, notations):
    """§2.3.2 continued: a HyTime document must be parsed, its modules
    validated, its addresses resolved, and the result *mapped* into
    presentable structures — strictly more steps than MHEG decode."""
    engine = HyTimeEngine()
    text = notations["hytime"]

    def full_processing():
        doc = engine.process(text)             # parse + resolve
        # the mapping step a presentation site would still need: walk
        # pages, build a presentable structure per media element
        presentable = []
        for page in doc.root.find_all("page"):
            for el in page.children:
                presentable.append((page.attributes["id"], el.name,
                                    el.attributes.get("src")))
        return doc, presentable

    doc, presentable = benchmark(full_processing)
    assert len(doc.hyperlinks) == 4
    assert len(presentable) >= 8
    benchmark.extra_info["hytime_bytes"] = len(text)


def test_authoring_favours_hytime(benchmark, notations):
    """§2.3.1: edit-in-place.  Changing one label in the HyTime text is
    a string operation; for the MHEG form it is decode -> mutate ->
    re-encode of the whole container."""
    codec = MhegCodec()
    ber = notations["ber"]
    text = notations["hytime"]

    def edit_mheg():
        container = codec.decode(ber)
        for obj in container.objects:
            if getattr(obj, "data", None) == b"Details":
                obj.data = b"More details"
        return codec.encode(container)

    new_blob = benchmark(edit_mheg)
    assert new_blob != ber
    import time
    t0 = time.perf_counter()
    for _ in range(100):
        edited = text.replace(">Details<", ">More details<")
    hytime_ms = (time.perf_counter() - t0) / 100 * 1e3
    benchmark.extra_info["hytime_edit_ms"] = round(hytime_ms, 4)
    assert "More details" in edited


def test_interactivity_mheg_only(benchmark, notations):
    """§2.3.3: the MHEG form carries conditional interaction objects;
    the HyTime form of the same course has only hyperlinks."""
    container = notations["compiled"].container

    def census():
        return [o for o in container.objects if isinstance(o, LinkClass)]

    mheg_links = benchmark(census)
    assert mheg_links
    for link in mheg_links:
        assert link.trigger_conditions          # rich trigger machinery
        assert link.effect.actions              # resolved action sets
    hytime_doc = HyTimeEngine().process(notations["hytime"])
    # HyTime: traversable clinks, but no conditions or action sets
    assert hytime_doc.hyperlinks
    for hyperlink in hytime_doc.hyperlinks:
        assert not hasattr(hyperlink, "trigger_conditions")
