"""Shared builders for the experiment harness.

Every table/figure experiment in EXPERIMENTS.md starts from one of
these: a deterministic media catalog, a reference hypermedia document,
a reference interactive multimedia document, and a deployed MITS
system.  Fixtures are function-scoped where mutation matters and
module-scoped where construction is expensive and read-only.
"""

from __future__ import annotations

import os

import pytest

from repro.authoring import (
    CoursewareEditor, HyperDocument, InteractiveDocument, NavigationLink,
    Page, PageItem, Scene, SceneObject, Section, TimelineEntry,
)
from repro.core import MitsSystem
from repro.media.production import MediaProductionCenter
from repro.obs.export import dump_observability


def build_catalog(seed: int = 1996):
    center = MediaProductionCenter(seed=seed)
    return {
        "intro-video": center.produce_video("intro-video", seconds=2.0),
        "lecture-audio": center.produce_audio("lecture-audio", seconds=2.0),
        "diagram": center.produce_image("diagram"),
        "notes": center.produce_text("notes"),
        "summary": center.produce_text("summary"),
    }


def build_hyperdoc() -> HyperDocument:
    doc = HyperDocument("bench-lib", title="Benchmark hypermedia course")
    doc.add_page(Page(name="start", items=[
        PageItem(name="body", kind="text", content_ref="notes"),
        PageItem(name="pic", kind="image", content_ref="diagram",
                 position=(320, 0)),
        PageItem(name="go-detail", kind="choice", label="Details"),
        PageItem(name="go-quiz", kind="choice", label="Quiz"),
    ]))
    doc.add_page(Page(name="detail", items=[
        PageItem(name="detail-text", kind="text", content_ref="summary"),
        PageItem(name="back", kind="choice", label="Back"),
    ]))
    doc.add_page(Page(name="quiz", items=[
        PageItem(name="question", kind="text", content_ref="notes"),
        PageItem(name="back", kind="choice", label="Back"),
    ]))
    doc.add_link(NavigationLink("start", "go-detail", "detail"))
    doc.add_link(NavigationLink("start", "go-quiz", "quiz"))
    doc.add_link(NavigationLink("detail", "back", "start"))
    doc.add_link(NavigationLink("quiz", "back", "start"))
    return doc


def build_imd() -> InteractiveDocument:
    doc = InteractiveDocument("bench-imd", title="Benchmark IMD course")
    intro = Scene(name="intro", objects=[
        SceneObject(name="text1", kind="text", content_ref="notes"),
        SceneObject(name="image1", kind="image", content_ref="diagram",
                    position=(320, 0)),
        SceneObject(name="audio1", kind="audio",
                    content_ref="lecture-audio"),
        SceneObject(name="choice1", kind="choice", label="Show image now"),
        SceneObject(name="stop-btn", kind="choice", label="Stop"),
    ])
    intro.timeline.add(TimelineEntry("text1", 0.0, 2.0,
                                     preempted_by="choice1",
                                     preempt_next="image1"))
    intro.timeline.add(TimelineEntry("image1", 2.0, 2.0))
    intro.timeline.add(TimelineEntry("audio1", 0.0, 4.0))
    intro.behavior.when_selected("stop-btn", ("stop", "audio1"),
                                 ("stop", "text1"), ("stop", "image1"))
    video_scene = Scene(name="clip", objects=[
        SceneObject(name="video1", kind="video", content_ref="intro-video")])
    video_scene.timeline.add(TimelineEntry("video1", 0.0))
    doc.add_section(Section(name="s1", scenes=[intro]))
    doc.add_section(Section(name="s2", scenes=[video_scene]))
    return doc


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


@pytest.fixture(scope="module")
def compiled_hyperdoc(catalog):
    return CoursewareEditor("bench-lib", catalog=catalog) \
        .compile_hyperdoc(build_hyperdoc())


@pytest.fixture(scope="module")
def compiled_imd(catalog):
    return CoursewareEditor("bench-imd", catalog=catalog) \
        .compile_imd(build_imd())


def emit_metrics(mits: MitsSystem, name: str) -> str:
    """Dump the deployment's observability sidecars.

    Written next to the pytest-benchmark output (override the
    directory with ``BENCH_METRICS_DIR``) so each ``BENCH_*.json``
    trajectory has a matching ``metrics_<name>.json`` and per-layer
    numbers stay comparable across PRs.  A ``trace_<name>.jsonl``
    sidecar carries the span tree and flight-recorder events, and a
    ``timeseries_<name>.json`` sidecar the sampler rings, for
    ``python -m repro.obs report`` / ``dashboard`` to render.
    """
    out_dir = os.environ.get(
        "BENCH_METRICS_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "out"))
    return dump_observability(mits, name, out_dir)[0]


def deploy_mits(topology: str = "star", **kwargs) -> MitsSystem:
    """A deployed system with the standard course published.

    Tracing is on so every scenario's ``trace_*.jsonl`` sidecar has
    cross-site span trees to render.
    """
    kwargs.setdefault("tracing", True)
    mits = MitsSystem(topology=topology, **kwargs)
    catalog = build_catalog()
    for media in catalog.values():
        mits.publish_media(media)
    author = mits.add_author("author1", "bench-imd", catalog=catalog)
    compiled = author.editor.compile_imd(build_imd())
    mits.wait(author.publish_courseware(
        compiled, courseware_id="bench-imd", title="Benchmark course",
        program="bench", keywords=["bench"],
        introduction_ref="intro-video"))
    mits.wait(author.publish_course(
        course_code="B101", name="Benchmark course", program="bench",
        courseware_id="bench-imd"))
    return mits
