"""E5.1-E5.2: the MEDIABASE platform and the courseware sub-system.

Fig 5.1 — the MEDIABASE stack: document model, production server,
storage/database, communication system, user interface; Fig 5.2 — the
interactive multimedia courseware platform fitted onto it (ATM +
TCP/IP-equivalent transport + object store + PC navigator).
"""

import pytest

from conftest import build_catalog, deploy_mits

from repro.database.schema import ContentRecord, LibraryDocument


def test_mediabase_stack(benchmark):
    """E5.1: every MEDIABASE component exists and interoperates —
    exercised through one query+retrieval round trip per layer."""

    def exercise():
        mits = deploy_mits()
        db = mits.database.db
        # MEDIASTORE/MEDIAFILE: typed storage with query
        assert db.content.exists("intro-video")
        # document model: the stored courseware container decodes
        blob = db.get_courseware("bench-imd").container_blob
        from repro.mheg import MhegCodec
        container = MhegCodec().decode(blob)
        # communication system: retrieval over the network
        nav = mits.add_user("mb-user").navigator
        nav.start()
        nav.register("MB")
        mits.sim.run(until=mits.sim.now + 5)
        rx = nav.client.get_content("intro-video")
        mits.sim.run(until=mits.sim.now + 60)
        return mits, container, rx

    mits, container, rx = benchmark.pedantic(exercise, rounds=3,
                                             iterations=1)
    assert rx.finished
    assert container.manifest()
    assert rx.data == mits.database.db.content.get("intro-video").data


def test_platform_deployment(benchmark):
    """E5.2: the courseware platform pieces — ObjectStore-equivalent,
    client module APIs, navigator on the user machine."""

    def exercise():
        mits = deploy_mits()
        db = mits.database.db
        db.add_library_document(LibraryDocument(
            doc_id="html-doc", title="doc", media_kind="text",
            content_ref="notes", keywords=["bench"]))
        nav = mits.add_user("pc").navigator
        nav.start()
        nav.register("PC User")
        mits.sim.run(until=mits.sim.now + 5)
        # the two APIs §5.3.2 names
        listing = mits.wait(nav.client.Get_List_Doc())
        blob = mits.wait(nav.client.Get_Selected_Doc(listing[0]))
        # and the two §5.5 asks for
        tree = mits.wait(nav.client.GetKeywordTree())
        docs = mits.wait(nav.client.GetDocByKeyword("bench"))
        return listing, blob, tree, docs

    listing, blob, tree, docs = benchmark.pedantic(exercise, rounds=3,
                                                   iterations=1)
    assert listing == ["bench-imd"]
    assert len(blob) > 0
    assert tree["children"]
    assert "html-doc" in docs or "bench-imd" in docs
