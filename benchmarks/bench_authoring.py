"""E4.1-E4.2: courseware production and the four authoring layers.

Fig 4.1 — the general production process: analysis (architecture
choice) -> media production -> authoring -> storage; Fig 4.2 — the
teaching-architecture / document / object / media layer mapping.
"""

import pytest

from conftest import build_catalog, deploy_mits

from repro.authoring import (
    CoursewareEditor, Scene, SceneObject, Section, TimelineEntry,
    architecture_by_name, list_architectures,
)
from repro.mheg.classes import CompositeClass, ContentClass, LinkClass


def fill_case_based_skeleton(doc, refs):
    """Fill the skeleton's empty scenes with minimal content."""
    for section, ref in zip(doc.sections, refs):
        scene = section.scenes[0]
        scene.objects.append(SceneObject(
            name=f"{section.name}-media", kind="text", content_ref=ref))
        scene.timeline.add(TimelineEntry(f"{section.name}-media", 0.0, 1.0))
    return doc


def test_production_pipeline(benchmark):
    """E4.1: the full process, timed end-to-end: produce media at the
    production site, author at the author site, store at the database
    site — over the network."""

    def pipeline():
        mits = deploy_mits()
        center = mits.production.center
        media = center.produce_text("fresh-notes")
        mits.publish_media(media)
        author = mits.authors["author1"]
        author.editor.catalog["fresh-notes"] = media
        arch = architecture_by_name("case-based")
        doc = arch.build_skeleton("fresh-course")
        fill_case_based_skeleton(doc, ["fresh-notes"] * 4)
        compiled = author.editor.compile_imd(doc)
        mits.wait(author.publish_courseware(
            compiled, courseware_id="fresh-course", title="Fresh",
            program="bench"))
        return mits

    mits = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    record = mits.database.db.get_courseware("fresh-course")
    assert record.title == "Fresh"
    assert len(record.container_blob) > 0


def test_layer_mapping(benchmark, catalog):
    """E4.2: each authoring layer maps onto the next — architecture ->
    document model -> MHEG objects -> media references."""
    architectures = list_architectures()

    def map_layers():
        out = {}
        for arch in architectures:
            doc = arch.build_skeleton(f"course-{arch.name}")
            if arch.document_model == "interactive":
                fill_case_based_skeleton(doc, ["notes"] * len(doc.sections))
                compiled = CoursewareEditor(
                    f"c-{arch.name}", catalog=catalog).compile_imd(doc)
            else:
                # hypermedia skeletons need pages filled + linked
                from repro.authoring import NavigationLink, PageItem
                for page in doc.pages:
                    page.items.append(PageItem(
                        name="body", kind="text", content_ref="notes"))
                    page.items.append(PageItem(
                        name="next", kind="choice", label="Next"))
                names = [p.name for p in doc.pages]
                for a, b in zip(names, names[1:] + names[:1]):
                    doc.add_link(NavigationLink(a, "next", b))
                compiled = CoursewareEditor(
                    f"c-{arch.name}", catalog=catalog).compile_hyperdoc(doc)
            out[arch.name] = compiled
        return out

    compiled_by_arch = benchmark(map_layers)
    assert len(compiled_by_arch) == 6
    for arch_name, compiled in compiled_by_arch.items():
        kinds = {type(o) for o in compiled.container.objects}
        # object layer: composites present; media layer: every content
        # object references the catalog
        assert any(issubclass(k, CompositeClass) for k in kinds)
        for obj in compiled.container.objects:
            if isinstance(obj, ContentClass) and obj.content_ref:
                assert obj.content_ref == "notes"
    # hypermedia architectures compile navigation links
    exploration = compiled_by_arch["exploration"]
    assert any(isinstance(o, LinkClass)
               for o in exploration.container.objects)
    benchmark.extra_info["objects_per_architecture"] = {
        name: len(c.container.objects)
        for name, c in compiled_by_arch.items()}
