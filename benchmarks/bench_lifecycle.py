"""E2.4: the MHEG object life cycle (Fig 2.4).

Form (a) interchange bytes -> form (b) engine-internal objects ->
form (c) run-time objects, and back out: rt deletion, model destroy.
The benchmark measures a full cycle; assertions pin the semantics the
figure prescribes (model reuse, rt independence).
"""

import pytest

from repro.mheg import (
    AudioContentClass, ContainerClass, MhegCodec, MhegEngine,
)
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.mheg.runtime import RtState


def make_blob(n_objects: int = 20) -> bytes:
    objects = [
        AudioContentClass(identifier=MhegIdentifier("lc", i),
                          content_hook="SPCM", data=bytes(200),
                          original_duration=1.0)
        for i in range(n_objects)]
    cont = ContainerClass(identifier=MhegIdentifier("lc", 999),
                          objects=objects)
    return MhegCodec().encode(cont)


def test_full_lifecycle(benchmark):
    blob = make_blob()

    def cycle():
        engine = MhegEngine()
        engine.receive(blob)                      # (a) -> (b)
        rt = engine.new_runtime(ref("lc", 0))     # (b) -> (c)
        engine.run(rt)
        engine.advance(2.0)                       # auto-stop at 1.0
        engine.delete_runtime(rt)                 # (c) removed
        engine.destroy(ref("lc", 0))              # (b) removed
        return engine

    engine = benchmark(cycle)
    assert not engine.knows(ref("lc", 0))


def test_runtime_copies_do_not_affect_model(benchmark):
    """Reuse: many rt copies of one model object, run independently."""
    blob = make_blob(1)

    def run():
        engine = MhegEngine()
        engine.receive(blob)
        rts = [engine.new_runtime(ref("lc", 0)) for _ in range(50)]
        for rt in rts[::2]:
            engine.run(rt)
        return engine, rts

    engine, rts = benchmark(run)
    assert sum(1 for rt in rts if rt.state is RtState.RUNNING) == 25
    assert sum(1 for rt in rts if rt.state is RtState.INACTIVE) == 25
    # the model object is untouched by any of it
    assert engine.get(ref("lc", 0)).original_duration == 1.0


def test_decode_scaling(benchmark):
    """(a)->(b) cost grows linearly with container population."""
    sizes = [5, 20, 80]
    blobs = {n: make_blob(n) for n in sizes}

    def decode_all():
        out = []
        for n in sizes:
            engine = MhegEngine()
            engine.receive(blobs[n])
            out.append(len(engine.stored_ids()))
        return out

    counts = benchmark(decode_all)
    assert counts == [6, 21, 81]  # objects + the container itself
    benchmark.extra_info["bytes_per_object"] = round(
        len(blobs[80]) / 80, 1)
