"""E3.5 / Fig 3.5: client-server database access over the ATM network.

Series the figure's model implies: response time as the number of
concurrent navigator clients grows, and throughput of the content
server under parallel streaming.  Shape expectation: monotonically
rising latency with load, graceful (not collapsing) throughput.
"""

import statistics

import pytest

from conftest import deploy_mits

from repro.database.api import wait_for


def measure_request_latency(mits, n_clients: int, requests_each: int = 5):
    """Mean Get_List_Doc latency with *n_clients* issuing concurrently."""
    navs = []
    for i in range(n_clients):
        nav = mits.add_user(f"load{n_clients}-{i}").navigator
        nav.start()
        nav.register(f"student-{i}")
        navs.append(nav)
    mits.sim.run(until=mits.sim.now + 10)

    latencies = []
    pending = []
    for nav in navs:
        for _ in range(requests_each):
            start = mits.sim.now
            pending.append((start, nav.client.Get_List_Doc()))
    deadline = mits.sim.now + 60
    while any(not p.done for _, p in pending) and mits.sim.now < deadline:
        if not mits.sim.step():
            break
    for start, p in pending:
        assert p.done and p.error is None
    # the simulator timestamps completions; use server counters as a
    # sanity check and report the spread of wall (simulated) time
    return mits


def test_latency_vs_client_count(benchmark):
    """Response time grows with concurrent clients (Fig 3.5 load)."""
    results = {}
    for n in (1, 4, 8):
        mits = deploy_mits()
        latencies = []
        navs = []
        for i in range(n):
            nav = mits.add_user(f"c{i}").navigator
            nav.start()
            nav.register(f"s{i}")
            navs.append(nav)
        mits.sim.run(until=mits.sim.now + 10)
        t0 = mits.sim.now
        calls = []
        for nav in navs:
            def on_result(r, t0=t0, acc=latencies):
                acc.append(mits.sim.now - t0)
            calls.append(nav.client.list_courseware(
                on_result=on_result))
        mits.sim.run(until=mits.sim.now + 30)
        assert len(latencies) == n
        results[n] = statistics.mean(latencies)

    def report():
        return results

    results = benchmark(report)
    benchmark.extra_info["mean_latency_s_by_clients"] = {
        str(k): round(v, 5) for k, v in results.items()}
    # serialized service at the single DB site: more clients, more wait
    assert results[8] >= results[1]


def test_streaming_throughput(benchmark):
    """Parallel content streams all complete; per-stream goodput
    degrades gracefully as streams share the server access link."""
    results = {}
    for n in (1, 4):
        mits = deploy_mits(access_bps=10e6)
        receivers = []
        for i in range(n):
            nav = mits.add_user(f"v{i}").navigator
            nav.start()
            nav.register(f"s{i}")
        mits.sim.run(until=mits.sim.now + 10)
        t0 = mits.sim.now
        for i, user in enumerate(list(mits.users.values())[:n]):
            receivers.append(user.client.get_content("intro-video"))
        mits.sim.run(until=mits.sim.now + 120)
        assert all(rx.finished for rx in receivers)
        total_bytes = sum(len(rx.data) for rx in receivers)
        elapsed = max(rx.finished_at for rx in receivers) - t0
        results[n] = total_bytes * 8 / elapsed

    def report():
        return results

    results = benchmark(report)
    benchmark.extra_info["aggregate_bps_by_streams"] = {
        str(k): round(v) for k, v in results.items()}
    # aggregate goodput must not collapse when streams are added
    assert results[4] > results[1] * 0.5
