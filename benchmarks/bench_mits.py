"""E3.1-E3.4: MITS architecture experiments.

Fig 3.1 — the five-site generic architecture deploys and cooperates;
Fig 3.2 — the layered MHEG-based delivery model end to end;
Fig 3.3 — the courseware life cycle production -> storage ->
presentation; Fig 3.4 — the per-site module inventory.
"""

import pytest

from conftest import build_catalog, build_imd, deploy_mits, emit_metrics

from repro.authoring.editor import CoursewareEditor
from repro.database.schema import ContentRecord


def test_five_site_deployment(benchmark):
    """E3.1: all five site kinds on one network, cross-checked."""

    def deploy():
        mits = deploy_mits()
        mits.add_user("user1")
        return mits

    mits = benchmark(deploy)
    snap = mits.snapshot()
    assert snap["metrics"], "deployment produced no metrics"
    benchmark.extra_info["metrics_dump"] = emit_metrics(
        mits, "five_site_deployment")
    assert snap["sites"]["production"] == "production"
    assert snap["sites"]["authors"] == ["author1"]
    assert snap["sites"]["users"] == ["user1"]
    assert snap["db_statistics"]["courseware"] == 1
    # every site is a distinct network host with its own access link
    for host in ("production", "author1", "database", "facilitator",
                 "user1"):
        assert host in mits.network.hosts


def test_layered_delivery(benchmark):
    """E3.2: author encodes MHEG (ASN.1), the communication layer
    carries AAL5 cells, the user site decodes and presents — the full
    Fig 3.2 stack with byte accounting per layer."""
    mits = deploy_mits()
    blob = mits.database.db.get_courseware("bench-imd").container_blob

    def session():
        user = mits.add_user(f"user-l{mits.sim.events_run}")
        nav = user.navigator
        nav.start()
        nav.register("Layer Tester")
        mits.sim.run(until=mits.sim.now + 5)
        ready = []
        nav.enter_classroom("B101", "bench-imd",
                            on_ready=lambda s: ready.append(s))
        mits.sim.run(until=mits.sim.now + 30)
        return nav, ready

    nav, ready = benchmark.pedantic(session, rounds=3, iterations=1)
    assert ready and ready[0].presenter.root is not None
    stats = ready[0].presenter.load_stats
    benchmark.extra_info["mheg_container_bytes"] = len(blob)
    benchmark.extra_info["content_bytes_streamed"] = stats["bytes"]
    nav.leave_classroom()


def test_courseware_lifecycle(benchmark):
    """E3.3: production -> storage -> retrieval -> presentation, with
    the stored object byte-identical through the round trip."""
    catalog = build_catalog()

    def lifecycle():
        mits = deploy_mits()
        record = mits.database.db.get_courseware("bench-imd")
        # update path: authors can revise at any time (§3.2)
        author = mits.authors["author1"]
        compiled = author.editor.compile_imd(build_imd())
        mits.wait(author.publish_courseware(
            compiled, courseware_id="bench-imd", title="v2",
            program="bench"))
        return mits, record

    mits, record = benchmark.pedantic(lifecycle, rounds=3, iterations=1)
    updated = mits.database.db.get_courseware("bench-imd")
    assert updated.version == record.version + 1
    assert updated.title == "v2"


def test_site_modules(benchmark):
    """E3.4: the module inventory per site matches Fig 3.4 — engines
    where needed, none at the pure storage site."""

    def check():
        mits = deploy_mits()
        user = mits.add_user("user1")
        return mits, user

    mits, user = benchmark.pedantic(check, rounds=3, iterations=1)
    # author site: editor (no presentation engine needed for authoring)
    assert mits.authors["author1"].editor is not None
    # user site: navigator with an engine inside its presenter sessions
    assert user.navigator is not None
    # database site: storage + content server, no MHEG interpreter
    assert not hasattr(mits.database.db, "engine")
    assert mits.database.db.content is not None
    # production output landed in the content store
    assert mits.database.db.content.refs()
