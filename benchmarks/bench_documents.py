"""E4.3-E4.4: the two document models, compiled and driven.

Fig 4.3 — hypermedia navigation (pages, choices, question loop);
Fig 4.4 — the interactive multimedia document with time-line and
behaviour structures, including dynamic pre-emption.
"""

import pytest

from repro.mheg.runtime import RtState
from repro.navigator.presenter import CoursewarePresenter


def presenter_for(compiled, catalog):
    presenter = CoursewarePresenter(
        local_resolver=lambda key: catalog[key].data)
    presenter.load_blob(compiled.encode())
    presenter.preload()
    return presenter


def test_hyperdoc_navigation(benchmark, compiled_hyperdoc, catalog):
    """E4.3: a full navigation tour of the Fig 4.3 structure."""

    def tour():
        presenter = presenter_for(compiled_hyperdoc, catalog)
        presenter.start()
        screens = [set(presenter.visible())]
        for click in ("go-detail", "back", "go-quiz", "back"):
            presenter.click(click)
            screens.append(set(presenter.visible()))
        return screens

    screens = benchmark(tour)
    assert "body" in screens[0]
    assert "detail-text" in screens[1]
    assert "body" in screens[2]          # back on the start page
    assert "question" in screens[3]
    assert screens[4] == screens[0]


def test_imd_atm_course(benchmark, compiled_imd, catalog):
    """E4.4: the ATM-course example — time-line playback, behaviour
    rule, and the dynamic interaction of Fig 4.4b."""

    def play_passively():
        presenter = presenter_for(compiled_imd, catalog)
        presenter.start()
        timeline = []
        for t in (0.5, 2.5, 4.5, 6.5):
            presenter.advance(t - presenter.position())
            timeline.append((t, set(presenter.visible())))
        return presenter, timeline

    presenter, timeline = benchmark(play_passively)
    by_time = dict(timeline)
    assert "text1" in by_time[0.5] and "image1" not in by_time[0.5]
    assert "image1" in by_time[2.5] and "text1" not in by_time[2.5]
    assert "video1" in by_time[4.5]        # second section chained in
    assert not presenter.playing           # and the course completed

    # dynamic interaction: pre-empt text1 at t=1 (< t2=2)
    presenter2 = presenter_for(compiled_imd, catalog)
    presenter2.start()
    presenter2.advance(1.0)
    presenter2.click("choice1")
    assert "image1" in presenter2.visible()
    assert "text1" not in presenter2.visible()

    # behaviour rule: the stop button stops the AV objects
    presenter3 = presenter_for(compiled_imd, catalog)
    presenter3.start()
    presenter3.advance(0.5)
    presenter3.click("stop-btn")
    assert "text1" not in presenter3.visible()
    assert "audio1" not in presenter3.visible()
