"""E4.5-E4.6: the MHEG class library and the courseware class library.

Fig 4.5 — every class in the basic library instantiates, validates,
and survives both interchange notations; Fig 4.6 — the courseware
templates (Interactive / Output / Hyperobject) expand into working
MHEG object graphs.
"""

import pytest

from repro.authoring.courseware import (
    Button, EntryField, Hyperobject, Menu, OutputObject,
)
from repro.authoring.editor import CoursewareEditor
from repro.mheg import MhegCodec, MhegEngine
from repro.mheg.classes import class_registry
from repro.mheg.runtime import RtState

# reuse the representative instances from the codec test suite
import sys
sys.path.insert(0, "tests")
from mheg.test_codec import sample_objects  # noqa: E402


def test_mheg_class_library(benchmark):
    """E4.5: one of each class, both notations, byte-size census."""
    codec = MhegCodec()
    objects = sample_objects()

    def roundtrip_all():
        out = {}
        for obj in objects:
            blob = codec.encode(obj)
            assert codec.decode(blob) == obj
            assert codec.from_sgml(codec.to_sgml(obj)) == obj
            out[type(obj).__name__] = len(blob)
        return out

    sizes = benchmark(roundtrip_all)
    benchmark.extra_info["asn1_bytes_per_class"] = sizes
    # the registry covers the eight standard classes plus extensions
    assert len(class_registry()) >= 13
    # descriptors are tiny relative to content-bearing objects
    assert sizes["DescriptorClass"] < sizes["ImageContentClass"] + 1000


def test_courseware_library(benchmark):
    """E4.6: template expansion into presentable object graphs."""

    def expand_all():
        editor = CoursewareEditor("cwlib")
        alloc = editor._alloc
        expansions = [
            Button(name="ok", label="OK").to_mheg(alloc),
            Menu(name="menu", entries=["a", "b", "c"]).to_mheg(alloc),
            EntryField(name="name", prompt="Name:").to_mheg(alloc),
            OutputObject(name="clip", kind="video",
                         content_ref="v1").to_mheg(alloc),
            Hyperobject(
                name="hyper",
                inputs=[Button(name="play", label="Play")],
                outputs=[OutputObject(name="movie", kind="video",
                                      content_ref="v1")],
                links={"play": "movie"}).to_mheg(alloc),
        ]
        return expansions

    expansions = benchmark(expand_all)
    counts = {i: len(e.objects) for i, e in enumerate(expansions)}
    benchmark.extra_info["objects_per_template"] = counts
    # hyperobject graph actually runs: click -> linked output presents
    engine = MhegEngine()
    engine.content_resolver = lambda key: b"x"
    hyper = expansions[-1]
    for obj in hyper.objects:
        engine.store(obj)
    rt = engine.new_runtime(hyper.main)
    engine.run(rt)
    play = next(r for r in engine.runtimes()
                if r.model.info.name == "play")
    movie = next(r for r in engine.runtimes()
                 if r.model.info.name == "movie")
    engine.select(play)
    assert movie.state is RtState.RUNNING
