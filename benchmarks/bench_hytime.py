"""E2.1-E2.3: HyTime modules, addressing, and document processing.

Fig 2.1 (module inter-dependencies), Fig 2.2 (the three location
address forms), Fig 2.3 (the engine/parser processing model).
"""

import pytest

from repro.hytime import (
    CoordinateAddress, HyTimeEngine, HyTimeModule, NameSpaceAddress,
    SemanticAddress, resolve_address, validate_modules,
)
from repro.hytime.location import build_name_space
from repro.hytime.modules import MODULE_DEPENDENCIES, dependency_closure
from repro.hytime.sgml import SgmlParser


def make_document(sections: int = 40) -> str:
    parts = ['<doc modules="base location hyperlinks measurement '
             'scheduling" id="root">']
    for i in range(sections):
        parts.append(f'<section id="s{i}"><p id="p{i}">paragraph {i} '
                     f"mentioning topic-{i % 7}</p></section>")
        if i:
            parts.append(f'<clink anchor="p{i}" target="s{i - 1}"/>')
    parts.append('<fcs id="show"><axis name="time" unit="second" '
                 'extent="600"/>')
    for i in range(sections):
        parts.append(f'<event name="e{i}" axis="time" start="{i * 10}" '
                     'length="9"/>')
    parts.append("</fcs></doc>")
    return "\n".join(parts)


def test_module_dependency_closure(benchmark):
    """E2.1: the Fig 2.1 dependency graph, validated and closed."""

    def run():
        for mod in HyTimeModule:
            closure = dependency_closure([mod])
            validate_modules(closure)
        return closure

    closure = benchmark(run)
    benchmark.extra_info["modules"] = len(MODULE_DEPENDENCIES)
    # rendition is the deepest module (Fig 2.1's bottom row)
    assert dependency_closure([HyTimeModule.RENDITION]) == {
        HyTimeModule.BASE, HyTimeModule.MEASUREMENT,
        HyTimeModule.SCHEDULING, HyTimeModule.RENDITION}


def test_location_resolution(benchmark):
    """E2.2: resolve all three address forms over one document."""
    root = SgmlParser().parse(make_document())
    name_space = build_name_space(root)

    def semantic(query, r):
        for p in r.find_all("p"):
            if query in p.full_text():
                return p
        return None

    def run():
        a = resolve_address(NameSpaceAddress("p7"), root,
                            name_space=name_space)
        b = resolve_address(CoordinateAddress([3, 0]), root)
        c = resolve_address(SemanticAddress("topic-3"), root,
                            semantic_resolver=semantic)
        return a, b, c

    a, b, c = benchmark(run)
    assert a.attributes["id"] == "p7"
    # children interleave sections and clinks: index 3 is section s2
    assert b.attributes["id"] == "p2"
    assert "topic-3" in c.full_text()


def test_document_processing(benchmark):
    """E2.3: the full processing model — parse, validate modules,
    name space, resolve every hyperlink, build FCS schedules."""
    text = make_document()
    engine = HyTimeEngine()

    doc = benchmark(engine.process, text)
    benchmark.extra_info["document_bytes"] = len(text)
    benchmark.extra_info["hyperlinks"] = len(doc.hyperlinks)
    assert len(doc.hyperlinks) == 39
    assert doc.events_at("show", "time", 15.0) == ["e1"]
