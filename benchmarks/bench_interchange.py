"""E2.7-E2.9: the interchange stack.

Fig 2.7 — the A/S/M/C/OPE level stack; Fig 2.8 — containers as the
interchange packing tool; Fig 2.9 — engine-to-engine interchange
(encode at A, transfer, decode at B).
"""

import pytest

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.topology import star_campus
from repro.mheg import (
    AudioContentClass, ContainerClass, ImageContentClass, MhegCodec,
    MhegEngine, ScriptClass, TextContentClass,
)
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.transport.connection import connect_pair
from repro.transport.messages import Message, MessageType

APP = "ix"


def mid(n):
    return MhegIdentifier(APP, n)


def sample_container(n_contents=10, content_bytes=500):
    objects = []
    for i in range(n_contents):
        objects.append(TextContentClass(
            identifier=mid(i), content_hook="STXT",
            data=bytes(content_bytes)))
    objects.append(ScriptClass(identifier=mid(100),
                               source=f"run {APP}/0#1"))
    return ContainerClass(identifier=mid(999), objects=objects)


def test_level_stack(benchmark):
    """E2.7 / Fig 2.7: each level is distinct and composable — the
    script (S) level rides inside the MHEG (M) level, which carries
    non-MHEG content (C) opaquely, framed by the protocol (OPE)."""
    codec = MhegCodec()
    cont = sample_container()

    def run():
        blob = codec.encode(cont)                       # M level
        frame = Message(type=MessageType.DATA, body=blob)  # OPE level
        wire = frame.encode()
        back = Message.decode(wire)
        obj = codec.decode(back.body)
        return wire, obj

    wire, obj = benchmark(run)
    # the C level (content data) is opaque bytes inside M
    assert obj.objects[0].data == bytes(500)
    # the S level survives interchange and still parses
    script = obj.objects[-1]
    assert script.parse()[0].verb == "run"
    benchmark.extra_info["wire_bytes"] = len(wire)


def test_container_packing(benchmark):
    """E2.8 / Fig 2.8: container size and per-object overhead as the
    population grows; receivers unpack every carried object."""
    codec = MhegCodec()
    sizes = {}
    for n in (1, 10, 50):
        sizes[n] = len(codec.encode(sample_container(n_contents=n)))

    blob = codec.encode(sample_container(n_contents=50))

    def unpack():
        engine = MhegEngine()
        engine.receive(blob)
        return engine

    engine = benchmark(unpack)
    assert len(engine.stored_ids()) == 52  # 50 + script + container
    per_object = (sizes[50] - sizes[1]) / 49
    benchmark.extra_info["container_bytes"] = sizes
    benchmark.extra_info["marginal_bytes_per_object"] = round(per_object)
    # packing overhead is linear and modest relative to content
    assert per_object < 2 * 500


def test_engine_to_engine(benchmark):
    """E2.9 / Fig 2.9: system A encodes, the ATM network carries, and
    system B decodes into its own internal form."""
    cont = sample_container(n_contents=5)

    def run():
        sim = Simulator()
        net, _ = star_campus(sim, ["site-a", "site-b"])
        contract = TrafficContract(ServiceCategory.NRT_VBR, pcr=100000,
                                   scr=50000, mbs=300)
        conn_a, conn_b = connect_pair(sim, net, "site-a", "site-b",
                                      contract)
        engine_a = MhegEngine(sim=sim, name="A")
        engine_b = MhegEngine(sim=sim, name="B")
        engine_a.store(cont)

        received = []
        conn_b.on_message = lambda msg: received.append(
            engine_b.receive(msg.body))
        blob = engine_a.encode(ref(APP, 999))
        conn_a.send(Message(type=MessageType.DATA, body=blob))
        sim.run(until=5.0)
        return engine_b, received

    engine_b, received = benchmark(run)
    assert received and engine_b.knows(ref(APP, 0))
    # B's internal form equals A's (the codec is lossless both ways)
    assert engine_b.get(ref(APP, 0)) == cont.objects[0]
