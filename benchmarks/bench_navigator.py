"""E5.3-E5.7: the navigator screens as executable flows.

Fig 5.3 entry screen, Fig 5.4 registration dialogs, Fig 5.5 course
presentation, Fig 5.6 profile update, Fig 5.7 library browsing — each
screen's inputs and effects, driven over the network.
"""

import pytest

from conftest import deploy_mits

from repro.navigator.navigator import NavigatorState


def registered_nav(mits, name="Student", host=None):
    host = host or f"u{len(mits.users)}"
    nav = mits.add_user(host).navigator
    nav.start()
    nav.register(name)
    mits.sim.run(until=mits.sim.now + 5)
    return nav


def test_entry_flow(benchmark):
    """E5.3: the first screen — welcome video, login or register."""

    def flow():
        mits = deploy_mits()
        nav = mits.add_user("entry-user").navigator
        screen = nav.start()
        return mits, nav, screen

    mits, nav, screen = benchmark.pedantic(flow, rounds=3, iterations=1)
    assert screen["video"] == "welcome"
    assert set(screen["actions"]) >= {"login", "register"}
    assert nav.state is NavigatorState.ENTRY


def test_registration_flow(benchmark):
    """E5.4: the dialog chain — profile, programs, course list with
    introduction video, selection."""

    def flow():
        mits = deploy_mits()
        nav = registered_nav(mits, "Reg Tester")
        programs = mits.wait(nav.list_programs())
        courses = mits.wait(nav.list_courses(programs[0]))
        summaries = mits.wait(nav.client.list_courseware(programs[0]))
        rx = nav.course_introduction(summaries[0]["introduction_ref"])
        mits.sim.run(until=mits.sim.now + 60)
        mits.wait(nav.register_for_course(courses[0]["course_code"]))
        return nav, rx

    nav, rx = benchmark.pedantic(flow, rounds=3, iterations=1)
    assert nav.student["student_number"].startswith("S")
    assert rx.finished and len(rx.data) > 1000
    assert nav.student is not None


def test_course_presentation(benchmark):
    """E5.5: the classroom screen — load, watch, interact, leave."""

    def flow():
        mits = deploy_mits()
        nav = registered_nav(mits, "Class Tester")
        mits.wait(nav.register_for_course("B101"))
        states = {}

        def on_ready(session):
            states["visible"] = session.presenter.visible()
            states["clickable"] = session.presenter.clickable()
            session.click("stop-btn")
            states["after_stop"] = session.presenter.visible()

        nav.enter_classroom("B101", "bench-imd", on_ready=on_ready)
        mits.sim.run(until=mits.sim.now + 60)
        position = nav.leave_classroom()
        mits.sim.run(until=mits.sim.now + 5)
        saved = mits.wait(nav.client.get_resume(
            nav.student["student_number"], "bench-imd"))
        return states, position, saved

    states, position, saved = benchmark.pedantic(flow, rounds=3,
                                                 iterations=1)
    assert "text1" in states["visible"]
    assert "stop-btn" in states["clickable"]
    assert "text1" not in states["after_stop"]
    assert saved == pytest.approx(position)


def test_profile_update(benchmark):
    """E5.6: update the student profile; the change persists."""

    def flow():
        mits = deploy_mits()
        nav = registered_nav(mits, "Profile Tester")
        nav.update_profile(address="42 Broadband Ave",
                           email="p@mirl.example")
        mits.sim.run(until=mits.sim.now + 5)
        fresh = mits.wait(nav.client.get_student(
            nav.student["student_number"]))
        return nav, fresh

    nav, fresh = benchmark.pedantic(flow, rounds=3, iterations=1)
    assert fresh["address"] == "42 Broadband Ave"
    assert nav.state is NavigatorState.ADMIN


def test_library_browsing(benchmark):
    """E5.7: list the library, read a document, follow its links."""

    def flow():
        mits = deploy_mits()
        # publish two cross-linked library documents
        center = mits.production.center
        linked = center.produce_text("linked-doc",
                                     link_targets=["other-doc"])
        other = center.produce_text("other-doc")
        mits.publish_media(linked)
        mits.publish_media(other)
        author = mits.authors["author1"]
        mits.wait(author.publish_library_doc(
            doc_id="linked-doc", title="Linked", media_kind="text",
            content_ref="linked-doc", keywords=["bench/library"]))
        mits.wait(author.publish_library_doc(
            doc_id="other-doc", title="Other", media_kind="text",
            content_ref="other-doc", keywords=["bench/library"]))

        nav = registered_nav(mits, "Lib Tester")
        docs = mits.wait(nav.browse_library())
        read = []
        nav.read_document("linked-doc", on_done=read.append)
        mits.sim.run(until=mits.sim.now + 60)
        return docs, read

    docs, read = benchmark.pedantic(flow, rounds=3, iterations=1)
    assert {d["doc_id"] for d in docs} == {"linked-doc", "other-doc"}
    assert read and read[0]["bytes"] > 0
    targets = {t for t, _ in read[0]["links"]}
    assert targets <= {"other-doc"}
