"""E2.5-E2.6: MHEG synchronisation mechanisms.

Fig 2.5 — application-level synchronisation via a script object;
Fig 2.6 — atomic and elementary spatial-temporal synchronisation,
plus cyclic/chained and the conditional form ("when the audio has
finished, display the image").
"""

import pytest

from repro.mheg import (
    AudioContentClass, CompositeClass, ContainerClass, ImageContentClass,
    MhegCodec, MhegEngine, ScriptClass,
)
from repro.mheg.identifiers import MhegIdentifier, ref
from repro.mheg.runtime import RtState
from repro.mheg.sync import when_stops_run

APP = "sync"


def mid(n):
    return MhegIdentifier(APP, n)


def engine_with(objects):
    engine = MhegEngine()
    for obj in objects:
        engine.store(obj)
    return engine


def audio(n, duration=1.0):
    return AudioContentClass(identifier=mid(n), content_hook="SPCM",
                             data=b"a", original_duration=duration)


def image(n):
    return ImageContentClass(identifier=mid(n), content_hook="SIMG",
                             data=b"i")


def test_application_script_sync(benchmark):
    """E2.5 / Fig 2.5: a script object orchestrates component objects
    through the engine's interface."""
    script = ScriptClass(identifier=mid(10), source="""
        new audio sync/1 as 1 on main
        new image sync/2 as 1 on main
        run sync/1#1
        wait 1.0
        run sync/2#1
        wait 0.5
        stop sync/2#1
        stop sync/1#1
    """)

    def run():
        engine = engine_with([audio(1, duration=9.0), image(2), script])
        rt = engine.new_runtime(ref(APP, 10))
        engine.run(rt)
        engine.advance(0.5)
        mid_state = engine.runtime(ref(APP, 2, 1)).state
        engine.advance(2.0)
        return engine, mid_state

    engine, mid_state = benchmark(run)
    assert mid_state is RtState.INACTIVE          # image waits for t=1.0
    assert engine.runtime(ref(APP, 1, 1)).state is RtState.STOPPED
    assert engine.runtime(ref(APP, 2, 1)).state is RtState.STOPPED


def test_atomic_elementary(benchmark):
    """E2.6 / Fig 2.6: atomic serial/parallel and elementary (T1, T2)."""

    def run():
        results = {}
        # atomic serial: B after A
        engine = engine_with([audio(1), audio(2), CompositeClass(
            identifier=mid(20), components=[ref(APP, 1), ref(APP, 2)],
            sync_spec={"kind": "atomic", "mode": "serial",
                       "first": f"{APP}/1", "second": f"{APP}/2"})])
        engine.run(engine.new_runtime(ref(APP, 20)))
        results["serial_b_at_0.5"] = engine.runtime(ref(APP, 2, 1)).state
        engine.advance(1.5)
        results["serial_b_at_1.5"] = engine.runtime(ref(APP, 2, 1)).state

        # atomic parallel: A with B
        engine2 = engine_with([audio(1), audio(2), CompositeClass(
            identifier=mid(20), components=[ref(APP, 1), ref(APP, 2)],
            sync_spec={"kind": "atomic", "mode": "parallel",
                       "first": f"{APP}/1", "second": f"{APP}/2"})])
        engine2.run(engine2.new_runtime(ref(APP, 20)))
        results["parallel_both"] = (
            engine2.runtime(ref(APP, 1, 1)).state,
            engine2.runtime(ref(APP, 2, 1)).state)

        # elementary: T1=0, T2=2.5
        engine3 = engine_with([audio(1), audio(2), CompositeClass(
            identifier=mid(20), components=[ref(APP, 1), ref(APP, 2)],
            sync_spec={"kind": "elementary", "entries": [
                {"target": f"{APP}/1", "time": 0.0},
                {"target": f"{APP}/2", "time": 2.5}]})])
        engine3.run(engine3.new_runtime(ref(APP, 20)))
        engine3.advance(2.0)
        results["elementary_b_at_2"] = engine3.runtime(ref(APP, 2, 1)).state
        engine3.advance(3.0)
        results["elementary_b_at_3"] = engine3.runtime(ref(APP, 2, 1)).state
        return results

    results = benchmark(run)
    assert results["serial_b_at_0.5"] is RtState.INACTIVE
    assert results["serial_b_at_1.5"] is RtState.RUNNING
    assert results["parallel_both"] == (RtState.RUNNING, RtState.RUNNING)
    assert results["elementary_b_at_2"] is RtState.INACTIVE
    assert results["elementary_b_at_3"] is RtState.RUNNING


def test_cyclic_and_chained(benchmark):
    """Fig 2.6 continued: cyclic (clock-tick) and chained sync."""

    def run():
        engine = engine_with([audio(1, duration=0.2), CompositeClass(
            identifier=mid(20), components=[ref(APP, 1)],
            sync_spec={"kind": "cyclic", "target": f"{APP}/1",
                       "period": 0.5, "repetitions": 4})])
        rt = engine.new_runtime(ref(APP, 20))
        engine.run(rt)
        engine.advance(5.0)
        child = engine.children_of(rt)[f"{APP}/1"]
        cycles = sum(1 for e in engine.events
                     if e.source == child and e.attribute == "presentation"
                     and e.new == "running")

        engine2 = engine_with([audio(1, 0.3), audio(2, 0.3), audio(3, 0.3),
                               CompositeClass(
            identifier=mid(20),
            components=[ref(APP, 1), ref(APP, 2), ref(APP, 3)],
            sync_spec={"kind": "chained",
                       "targets": [f"{APP}/1", f"{APP}/2", f"{APP}/3"]})])
        rt2 = engine2.new_runtime(ref(APP, 20))
        engine2.run(rt2)
        engine2.advance(2.0)
        order = [e.source for e in engine2.events
                 if e.attribute == "presentation" and e.new == "running"
                 and not e.source.startswith(f"{APP}/20")]
        return cycles, order, rt2.state

    cycles, order, final = benchmark(run)
    assert cycles == 4
    assert order == [f"{APP}/1#1", f"{APP}/2#1", f"{APP}/3#1"]
    assert final is RtState.STOPPED  # chain completion ends the composite


def test_conditional_sync(benchmark):
    """§2.2.2.3: 'when the audio has finished, display the image'."""
    link = when_stops_run(APP, 30, ref(APP, 1), ref(APP, 2))

    def run():
        engine = engine_with([audio(1, duration=1.0), image(2), link,
                              CompositeClass(
            identifier=mid(20), components=[ref(APP, 1), ref(APP, 2)],
            links=[ref(APP, 30)],
            sync_spec={"kind": "elementary", "entries": [
                {"target": f"{APP}/1", "time": 0.0}]})])
        engine.run(engine.new_runtime(ref(APP, 20)))
        engine.advance(2.0)
        return engine

    engine = benchmark(run)
    assert engine.runtime(ref(APP, 1, 1)).state is RtState.STOPPED
    assert engine.runtime(ref(APP, 2, 1)).state is RtState.RUNNING
    assert engine.stats["links_fired"] >= 1
