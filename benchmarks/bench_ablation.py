"""EX.2-EX.5: ablations of the design choices DESIGN.md calls out.

EX.2 §3.4.2 — content by reference vs embedded in the courseware;
EX.3 §1.3.3/§3.3 — broadband vs narrowband delivery (stall cliff);
EX.4 §3.1.2.2 — descriptor-based negotiation saves wasted transfer;
EX.5 §4.3.1 — static vs dynamic interaction (guidance against
getting lost in the web).
"""

import pytest

from conftest import build_catalog, build_imd, deploy_mits

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.topology import star_campus
from repro.authoring import CoursewareEditor
from repro.media.production import MediaProductionCenter
from repro.media.video import VideoStream
from repro.mheg import MhegCodec
from repro.mheg.classes.content import ContentClass
from repro.streaming import VideoPlayer, VideoStreamSender


def test_reference_vs_embedded(benchmark, catalog):
    """EX.2: the by-reference scheme MITS chose, against embedding all
    content in the interchanged container."""
    codec = MhegCodec()

    def build_both():
        referenced = CoursewareEditor("ref", catalog=catalog) \
            .compile_imd(build_imd())
        embedded = CoursewareEditor("emb", catalog=catalog) \
            .compile_imd(build_imd())
        for obj in embedded.container.objects:
            if isinstance(obj, ContentClass) and obj.content_ref:
                obj.data = catalog[obj.content_ref].data
                obj.content_ref = None
        return (len(referenced.encode()), len(codec.encode(
            embedded.container)))

    ref_bytes, emb_bytes = benchmark(build_both)
    total_media = sum(m.size for m in catalog.values()
                      if m.name in ("notes", "diagram", "lecture-audio",
                                    "intro-video"))
    benchmark.extra_info["referenced_container_bytes"] = ref_bytes
    benchmark.extra_info["embedded_container_bytes"] = emb_bytes
    # the scenario travels light; media moves only on demand (§3.4.2)
    assert ref_bytes < emb_bytes / 5
    assert emb_bytes > total_media        # embeds all media + structure
    # reuse: two courseware referencing the same video store it once;
    # embedded, it is duplicated in both containers
    assert ref_bytes * 2 < emb_bytes


def test_bandwidth_sweep(benchmark):
    """EX.3: stall behaviour across access bandwidths — the broadband
    argument.  Above the video bitrate: clean playback; below: a
    sharply growing stall time."""
    video = MediaProductionCenter().produce_video(
        "sweep-video", seconds=4.0, width=64, height=64, frame_rate=10.0)
    bitrate = video.bitrate_bps()
    stream = VideoStream(video.data)

    def sweep():
        results = {}
        for factor in (8.0, 2.0, 1.0, 0.6, 0.3):
            bw = bitrate * factor
            sim = Simulator()
            net, _ = star_campus(sim, ["server", "client"],
                                 access_bps=max(bw, 9600.0))
            player = VideoPlayer(sim, preroll=0.5, skip_grace=1.0,
                                 frames_expected=stream.frames)
            vc = net.open_vc("server", "client",
                             TrafficContract(ServiceCategory.UBR,
                                             pcr=max(bw, 9600.0) / 424),
                             player.on_pdu)
            VideoStreamSender(sim, vc, video.data, lead=0.25).start()
            sim.run(until=stream.duration * 6 + 60)
            results[factor] = (player.stats.stalls,
                               round(player.stats.rebuffer_time, 3))
        return results

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    benchmark.extra_info["video_bitrate_bps"] = round(bitrate)
    benchmark.extra_info["stalls_by_bandwidth_factor"] = {
        str(k): v for k, v in results.items()}
    # broadband (>= 2x bitrate): stall-free
    assert results[8.0] == (0, 0.0)
    assert results[2.0][0] == 0
    # below the bitrate the presentation degrades, monotonically
    assert results[0.6][1] > 0
    assert results[0.3][1] > results[0.6][1]


def test_descriptor_negotiation(benchmark, catalog):
    """EX.4: checking the descriptor before transfer avoids shipping
    content a site cannot present (§3.1.2.2 'Minimal Resources')."""
    compiled = CoursewareEditor("neg", catalog=catalog) \
        .compile_imd(build_imd())
    descriptor = compiled.descriptor
    capable = {"decoders": ["SIMG", "SMPG", "SPCM", "STXT"],
               "bandwidth_bps": 155e6, "storage_bytes": 1 << 30}
    incapable = {"decoders": ["STXT"], "bandwidth_bps": 9600,
                 "storage_bytes": 1 << 30}

    def negotiate():
        ok, _ = descriptor.check_capabilities(capable)
        bad, problems = descriptor.check_capabilities(incapable)
        return ok, bad, problems

    ok, bad, problems = benchmark(negotiate)
    assert ok is True and bad is False
    assert any("SMPG" in p for p in problems)
    descriptor_bytes = len(MhegCodec().encode(descriptor))
    content_bytes = descriptor.total_size
    benchmark.extra_info["descriptor_bytes"] = descriptor_bytes
    benchmark.extra_info["content_bytes_saved"] = content_bytes
    # the negotiation costs a tiny descriptor instead of the content
    assert descriptor_bytes < content_bytes / 10


def test_policing_protects_conformant_flows(benchmark):
    """EX.6: UPC on vs off.  A source violating its CBR contract
    floods a shared port; with policing its excess dies at the ingress
    switch and a conformant victim flow is untouched — without it the
    violator's cells reach the victim's queue."""
    from repro.atm.aal5 import segment_pdu
    from repro.atm.topology import star_campus

    def run(police: bool):
        sim = Simulator()
        net, _ = star_campus(sim, ["victim", "violator", "sink"],
                             access_bps=3e6, buffer_cells=48,
                             police=police)
        victim_delays = []
        victim = net.open_vc("victim", "sink",
                             TrafficContract(ServiceCategory.CBR,
                                             pcr=1000),
                             lambda p, i: victim_delays.append(i.delay))
        violator = net.open_vc("violator", "sink",
                               TrafficContract(ServiceCategory.CBR,
                                               pcr=300, cdvt=0.0),
                               lambda p, i: None)

        def victim_source():
            while True:
                victim.send(bytes(300))
                yield 0.02

        sim.spawn(victim_source())
        # the violator bypasses shaper AND uplink: bursts of raw cells
        # slam straight into the switch, as a broken NIC would
        sw = net.switches["sw0"]

        def flood():
            # a continuous ~6x-line-rate stream keeps the shared queue
            # pinned full across the victim's arrival instants
            for burst in range(2000):
                for cell in segment_pdu(bytes(2000), vpi=0,
                                        vci=violator.first_vci,
                                        first_seqno=burst):
                    sw.receive(cell, "violator")
                yield 0.001
        sim.spawn(flood())
        sim.run(until=3.0)
        import statistics
        ordered = sorted(victim_delays)
        return {"victim_delivery": victim.stats.pdus_delivered
                / max(1, victim.stats.pdus_sent),
                "victim_mean_delay": statistics.mean(victim_delays),
                "victim_p95_delay": ordered[int(len(ordered) * 0.95)],
                "policed_dropped": sw.stats.policed_dropped}

    def both():
        return run(police=True), run(police=False)

    policed, unpoliced = benchmark.pedantic(both, rounds=2, iterations=1)
    benchmark.extra_info["policed"] = {
        k: round(v, 5) for k, v in policed.items()}
    benchmark.extra_info["unpoliced"] = {
        k: round(v, 5) for k, v in unpoliced.items()}
    # with UPC the violator's flood is dropped at ingress and the
    # conformant victim keeps its clean delay profile
    assert policed["policed_dropped"] > 0
    assert policed["victim_delivery"] == 1.0
    # without UPC the flood occupies the shared CBR queue: the victim
    # still gets through (FIFO admits a spread trickle) but its delay
    # and jitter degrade — fatal for the CBR class, whose contract is
    # exactly delay/CDV
    assert unpoliced["policed_dropped"] == 0
    assert unpoliced["victim_mean_delay"] > \
        policed["victim_mean_delay"] * 1.5
    assert unpoliced["victim_p95_delay"] > \
        policed["victim_p95_delay"] * 1.8


def test_static_vs_dynamic(benchmark, catalog):
    """EX.5: in the static (hypermedia) model the learner alone drives
    everything — with no pre-defined scenario, an undirected learner
    can wander without progress; the dynamic (IMD) model's scenario
    carries them through the content by itself."""
    from conftest import build_hyperdoc
    from repro.navigator.presenter import CoursewarePresenter

    hyper = CoursewareEditor("st", catalog=catalog) \
        .compile_hyperdoc(build_hyperdoc())
    imd = CoursewareEditor("dy", catalog=catalog).compile_imd(build_imd())

    def run_both():
        # static: no clicks -> the learner never leaves page one
        p1 = CoursewarePresenter(
            local_resolver=lambda key: catalog[key].data)
        p1.load_blob(hyper.encode())
        p1.preload()
        p1.start()
        p1.advance(10.0)
        static_seen = set(p1.visible())
        static_playing = p1.playing

        # an aimless learner clicking in circles revisits pages
        p1.click("go-detail")
        p1.click("back")
        p1.click("go-detail")
        wandering = set(p1.visible())

        # dynamic: the scenario advances unaided through both sections
        p2 = CoursewarePresenter(
            local_resolver=lambda key: catalog[key].data)
        p2.load_blob(imd.encode())
        p2.preload()
        p2.start()
        seen = set()
        for _ in range(14):
            p2.advance(0.5)
            seen.update(p2.visible())
        return static_seen, static_playing, wandering, seen, p2.playing

    static_seen, static_playing, wandering, dynamic_seen, done = \
        benchmark(run_both)
    # static interaction: stuck on the first page, forever
    assert "body" in static_seen and "detail-text" not in static_seen
    assert static_playing            # nothing ever finishes on its own
    assert "detail-text" in wandering
    # dynamic interaction: the scenario presented every scene unaided
    assert {"text1", "image1", "audio1", "video1"} <= dynamic_seen
    assert not done                  # and the course completed
