#!/usr/bin/env python
"""Collaborative courseware authoring (§6.2 future work, realised).

Two authors jointly build one interactive course: Alice writes the
introduction while Bob writes a case study in parallel, under
section-granular locks.  A third author joins late and catches up by
replaying the operation log.  The finished document compiles and plays
like any single-author course.

Run:  python examples/collaborative_authoring.py
"""

from repro.authoring import (
    CollaborativeSession, CoursewareEditor, InteractiveDocument,
    SceneObject, TimelineEntry,
)
from repro.authoring.behavior import (
    BehaviorAction, BehaviorCondition, BehaviorRule,
)
from repro.media.production import MediaProductionCenter
from repro.navigator.presenter import CoursewarePresenter


def main() -> None:
    center = MediaProductionCenter(seed=11)
    catalog = {
        "intro-clip": center.produce_video("intro-clip", seconds=1.5),
        "case-text": center.produce_text("case-text"),
        "case-audio": center.produce_audio("case-audio", seconds=1.0),
    }

    session = CollaborativeSession(InteractiveDocument(
        "joint-course", title="Jointly authored ATM course"))

    bob_sees = []
    session.join("alice")
    session.join("bob", on_operation=lambda op: bob_sees.append(
        f"{op.author}:{op.kind}"))

    # Alice builds the introduction
    session.add_section("alice", "intro", title="Introduction")
    session.add_scene("alice", "intro", "welcome")
    session.add_object("alice", "intro", "welcome", SceneObject(
        name="clip", kind="video", content_ref="intro-clip"))
    session.add_object("alice", "intro", "welcome", SceneObject(
        name="skip", kind="choice", label="Skip"))
    session.schedule("alice", "intro", "welcome",
                     TimelineEntry("clip", 0.0, 1.5))
    session.add_rule("alice", "intro", "welcome", BehaviorRule(
        trigger=BehaviorCondition("skip", "selected"),
        actions=[BehaviorAction("stop", "clip")]))

    # Bob, concurrently, builds a case study in his own section
    session.add_section("bob", "case", title="A Case Study")
    session.add_scene("bob", "case", "story")
    session.add_object("bob", "case", "story", SceneObject(
        name="text", kind="text", content_ref="case-text"))
    session.add_object("bob", "case", "story", SceneObject(
        name="narration", kind="audio", content_ref="case-audio"))
    session.schedule("bob", "case", "story",
                     TimelineEntry("text", 0.0, 1.0))
    session.schedule("bob", "case", "story",
                     TimelineEntry("narration", 0.0, 1.0))

    print(f"operations Bob observed from Alice: "
          f"{[o for o in bob_sees if o.startswith('alice')]}")

    # locks protect against cross-editing
    try:
        session.add_scene("bob", "intro", "hijack")
    except Exception as exc:
        print(f"lock enforcement: {exc}")

    # Carol joins late and catches up from the log
    log = session.join("carol")
    print(f"Carol replays {len(log)} operations to catch up "
          f"({sorted(set(op.author for op in log))} contributed)")

    # the joint document compiles and plays
    session.document.validate()
    compiled = CoursewareEditor("joint", catalog=catalog) \
        .compile_imd(session.document)
    presenter = CoursewarePresenter(
        local_resolver=lambda key: catalog[key].data)
    presenter.load_blob(compiled.encode())
    presenter.preload()
    presenter.start()
    print("t=0.5 on screen:", presenter.visible())
    presenter.advance(1.6)
    print("t=1.6 on screen:", presenter.visible(), "(Bob's section)")
    presenter.advance(2.0)
    print("course finished:", not presenter.playing)


if __name__ == "__main__":
    main()
