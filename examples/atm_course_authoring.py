#!/usr/bin/env python
"""Authoring walkthrough: the Fig 4.4 ATM course, all four layers.

Reproduces the thesis's running example — an interactive multimedia
course about ATM itself — exercising each authoring layer (Fig 4.2):

* teaching-architecture layer: pick the case-based framework;
* document layer: sections -> scenes with time-line and behaviour
  structures, including the dynamic-interaction pattern of Fig 4.4b
  (choice1 pre-empts text1 -> image1);
* object layer: the compiled MHEG class instances, shown in both
  interchange notations (ASN.1 sizes, SGML extract);
* media layer: deterministic synthetic assets.

The compiled course then plays back on a standalone MHEG engine with
a scripted user, printing the screen state over time.

Run:  python examples/atm_course_authoring.py
"""

from repro.authoring import (
    CoursewareEditor, InteractiveDocument, Scene, SceneObject, Section,
    TimelineEntry, architecture_by_name,
)
from repro.media.production import MediaProductionCenter
from repro.mheg import MhegCodec
from repro.navigator.presenter import CoursewarePresenter


def build_course(catalog) -> InteractiveDocument:
    arch = architecture_by_name("case-based")
    print(f"teaching architecture: {arch.name} — {arch.summary}")
    print(f"  parts to fill: {arch.skeleton_parts}")

    doc = InteractiveDocument("atm-course", title="ATM, the case-based way")

    # -- scene 1: the Fig 4.4 example ------------------------------------
    intro = Scene(name="intro", objects=[
        SceneObject(name="text1", kind="text", content_ref="atm-overview",
                    position=(0, 0)),
        SceneObject(name="image1", kind="image", content_ref="cell-diagram",
                    position=(320, 0)),
        SceneObject(name="audio1", kind="audio", content_ref="narration"),
        SceneObject(name="choice1", kind="choice",
                    label="Show the diagram now", position=(0, 400)),
        SceneObject(name="stop-btn", kind="choice", label="Stop",
                    position=(200, 400)),
    ])
    # Fig 4.4b: text1 from t1=0 to t2=2, then image1; choice1 may pre-empt
    intro.timeline.add(TimelineEntry("text1", 0.0, 2.0,
                                     preempted_by="choice1",
                                     preempt_next="image1"))
    intro.timeline.add(TimelineEntry("image1", 2.0, 2.0))
    intro.timeline.add(TimelineEntry("audio1", 0.0, 4.0))
    # Fig 4.4c: the stop button stops everything
    intro.behavior.when_selected("stop-btn", ("stop", "audio1"),
                                 ("stop", "text1"), ("stop", "image1"))

    # -- scene 2: a case ---------------------------------------------------
    case = Scene(name="case-study", objects=[
        SceneObject(name="case-video", kind="video",
                    content_ref="case-clip"),
    ])
    case.timeline.add(TimelineEntry("case-video", 0.0))

    doc.add_section(Section(name="problem", title="The Problem",
                            scenes=[intro]))
    doc.add_section(Section(name="cases", title="A Case",
                            scenes=[case]))
    return doc


def main() -> None:
    # media layer
    center = MediaProductionCenter(seed=42)
    catalog = {
        "atm-overview": center.produce_text("atm-overview"),
        "cell-diagram": center.produce_image("cell-diagram"),
        "narration": center.produce_audio("narration", seconds=4.0),
        "case-clip": center.produce_video("case-clip", seconds=2.0),
    }
    print("media layer:", {k: f"{m.size}B" for k, m in catalog.items()})

    # document layer
    doc = build_course(catalog)
    print("logical view:", doc.logical_view())

    # object layer
    editor = CoursewareEditor("atm-course", catalog=catalog)
    compiled = editor.compile_imd(doc)
    blob = compiled.encode()
    print(f"\nobject layer: {len(compiled.container.objects)} MHEG objects, "
          f"ASN.1 container = {len(blob)} bytes")
    codec = MhegCodec()
    sizes = {type(o).__name__: len(codec.encode(o))
             for o in compiled.container.objects[:4]}
    print("  per-object ASN.1 sizes (first few):", sizes)
    sgml = codec.to_sgml(compiled.container.objects[0])
    print("  SGML notation extract:")
    for line in sgml.splitlines()[:6]:
        print("   ", line)

    # playback with a scripted user
    print("\nplayback (user clicks 'choice1' at t=1.0):")
    presenter = CoursewarePresenter(
        local_resolver=lambda key: catalog[key].data)
    presenter.load_blob(blob)
    presenter.preload()
    presenter.start()
    for t, action in [(0.5, None), (1.0, "choice1"), (1.5, None),
                      (4.5, None), (6.5, None)]:
        presenter.advance(t - presenter.position())
        if action:
            presenter.click(action)
        print(f"  t={t:4.1f}  visible={presenter.visible()}")
    print("course finished:", not presenter.playing)


if __name__ == "__main__":
    main()
