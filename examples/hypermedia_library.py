#!/usr/bin/env python
"""Hypermedia courseware: the exploration architecture and both
interchange notations.

Builds a hypermedia document (Fig 4.3) under the learning-by-exploring
architecture: an entry page fanning out to topic pages with a
test-your-knowledge loop — the exact navigation structure of Fig 4.3b.
The same document is compiled to:

* an MHEG container (final-form, directly presentable), and
* a HyTime/SGML document (publishing form, needs parsing+resolution),

then navigated page by page with clicks, and the two notations'
processing costs are compared — the §2.3 trade-off in miniature.

Run:  python examples/hypermedia_library.py
"""

import time

from repro.authoring import (
    CoursewareEditor, HyperDocument, NavigationLink, Page, PageItem,
    architecture_by_name,
)
from repro.hytime import HyTimeEngine
from repro.media.production import MediaProductionCenter
from repro.navigator.presenter import CoursewarePresenter


def build_document(catalog) -> HyperDocument:
    arch = architecture_by_name("exploration")
    print(f"architecture: {arch.name} — {arch.summary}\n")

    doc = HyperDocument("explore-atm", title="Exploring ATM")
    doc.add_page(Page(name="entry", items=[
        PageItem(name="welcome", kind="text", content_ref="welcome-text"),
        PageItem(name="to-cells", kind="choice", label="Cells",
                 position=(0, 300)),
        PageItem(name="to-switching", kind="choice", label="Switching",
                 position=(140, 300)),
        PageItem(name="to-quiz", kind="choice", label="Test your knowledge",
                 position=(280, 300)),
    ]))
    doc.add_page(Page(name="cells", items=[
        PageItem(name="cells-text", kind="text", content_ref="cells-text"),
        PageItem(name="cells-pic", kind="image", content_ref="cells-pic",
                 position=(320, 0)),
        PageItem(name="back", kind="choice", label="Back"),
    ]))
    doc.add_page(Page(name="switching", items=[
        PageItem(name="sw-text", kind="text", content_ref="switching-text"),
        PageItem(name="back", kind="choice", label="Back"),
    ]))
    # Fig 4.3b: Test Your Knowledge -> question -> right/wrong -> back
    doc.add_page(Page(name="question", items=[
        PageItem(name="q-text", kind="text", content_ref="question-text"),
        PageItem(name="answer-53", kind="choice", label="53 bytes"),
        PageItem(name="answer-64", kind="choice", label="64 bytes"),
    ]))
    doc.add_page(Page(name="right", items=[
        PageItem(name="right-text", kind="text", content_ref="right-text"),
        PageItem(name="back", kind="choice", label="Continue"),
    ]))
    doc.add_page(Page(name="wrong", items=[
        PageItem(name="wrong-text", kind="text", content_ref="wrong-text"),
        PageItem(name="retry", kind="choice", label="Try again"),
    ]))
    doc.add_link(NavigationLink("entry", "to-cells", "cells"))
    doc.add_link(NavigationLink("entry", "to-switching", "switching"))
    doc.add_link(NavigationLink("entry", "to-quiz", "question"))
    doc.add_link(NavigationLink("cells", "back", "entry"))
    doc.add_link(NavigationLink("switching", "back", "entry"))
    doc.add_link(NavigationLink("question", "answer-53", "right"))
    doc.add_link(NavigationLink("question", "answer-64", "wrong"))
    doc.add_link(NavigationLink("right", "back", "entry"))
    doc.add_link(NavigationLink("wrong", "retry", "question"))
    return doc


def main() -> None:
    center = MediaProductionCenter(seed=7)
    catalog = {name: center.produce_text(name) for name in (
        "welcome-text", "cells-text", "switching-text", "question-text",
        "right-text", "wrong-text")}
    catalog["cells-pic"] = center.produce_image("cells-pic")

    doc = build_document(catalog)
    print("navigation from 'entry':", doc.navigation_subset("entry"))

    editor = CoursewareEditor("explore-atm", catalog=catalog)
    compiled = editor.compile_hyperdoc(doc)
    mheg_blob = compiled.encode()
    hytime_text = editor.to_hytime(doc)
    print(f"\nMHEG container: {len(mheg_blob)} bytes (ASN.1, final form)")
    print(f"HyTime document: {len(hytime_text)} bytes (SGML, needs "
          "parsing + address resolution)")

    # presentation-time cost of each notation
    t0 = time.perf_counter()
    for _ in range(50):
        presenter = CoursewarePresenter(
            local_resolver=lambda key: catalog[key].data)
        presenter.load_blob(mheg_blob)
    mheg_ms = (time.perf_counter() - t0) / 50 * 1e3
    t0 = time.perf_counter()
    for _ in range(50):
        HyTimeEngine().process(hytime_text)
    hytime_ms = (time.perf_counter() - t0) / 50 * 1e3
    print(f"decode-for-presentation: MHEG {mheg_ms:.2f} ms vs "
          f"HyTime {hytime_ms:.2f} ms per document\n")

    # navigate: entry -> quiz -> wrong -> retry -> right -> entry
    presenter = CoursewarePresenter(
        local_resolver=lambda key: catalog[key].data)
    presenter.load_blob(mheg_blob)
    presenter.preload()
    presenter.start()
    print("navigating:")
    for click in ("to-quiz", "answer-64", "retry", "answer-53", "back"):
        print(f"  visible={presenter.visible()}  -> click {click!r}")
        presenter.click(click)
    print(f"  visible={presenter.visible()}  (back at the entry page)")


if __name__ == "__main__":
    main()
