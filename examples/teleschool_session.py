#!/usr/bin/env python
"""The §5.4 sample learning session, over an OCRInet-like metro WAN.

A remote student walks every screen of the prototype (Figs 5.3-5.7):
entry, registration with a course-introduction video, the classroom
with interaction and bookmarks, profile update, library browsing with
cross-reference links, the bulletin board, an exercise, and a question
to the on-line facilitator — all over simulated ATM with real
cell-level transport.

Run:  python examples/teleschool_session.py
"""

from repro.authoring import (
    InteractiveDocument, Scene, SceneObject, Section, TimelineEntry,
)
from repro.core import MitsSystem
from repro.school.exercise import Exercise, MultipleChoiceQuestion, NumericQuestion


def deploy() -> MitsSystem:
    mits = MitsSystem(topology="ocrinet")
    center = mits.production.center
    assets = {
        "atm-intro-video": center.produce_video("atm-intro-video",
                                                seconds=2.0),
        "atm-notes": center.produce_text(
            "atm-notes", link_targets=["lib-cells", "lib-qos"]),
        "cells-doc": center.produce_text("cells-doc"),
        "qos-doc": center.produce_text("qos-doc"),
    }
    for media in assets.values():
        mits.publish_media(media)

    author = mits.add_author("author1", "atm-101", catalog=assets)
    scene = Scene(name="lecture", objects=[
        SceneObject(name="clip", kind="video",
                    content_ref="atm-intro-video"),
        SceneObject(name="notes", kind="text", content_ref="atm-notes",
                    position=(0, 300)),
        SceneObject(name="skip", kind="choice", label="Skip")])
    scene.timeline.add(TimelineEntry("clip", 0.0))
    scene.timeline.add(TimelineEntry("notes", 0.0, 2.0))
    scene.behavior.when_selected("skip", ("stop", "clip"))
    doc = InteractiveDocument("atm-101", title="ATM Networks")
    doc.add_section(Section(name="s1", scenes=[scene]))
    mits.wait(author.publish_courseware(
        author.editor.compile_imd(doc), courseware_id="atm-101",
        title="ATM Networks", program="networking",
        keywords=["networks/atm"], introduction_ref="atm-intro-video"))
    mits.wait(author.publish_course(
        course_code="ELG5376", name="ATM Networks", program="networking",
        courseware_id="atm-101"))
    for doc_id, ref in (("lib-cells", "cells-doc"), ("lib-qos", "qos-doc")):
        mits.wait(author.publish_library_doc(
            doc_id=doc_id, title=doc_id, media_kind="text",
            content_ref=ref, keywords=["networks/atm"]))

    service = mits.facilitator.service
    service.facilitator.teach(["atm", "cell"],
                              "An ATM cell is 53 octets: 5 header + 48 payload.")
    service.bulletin.post("school.announcements", "admin",
                          "Welcome to MIRL TeleSchool",
                          "New this term: ATM Networks (ELG5376).")
    service.exercises.add(Exercise(
        exercise_id="atm-quiz-1", course_code="ELG5376",
        title="Cells and rates", questions=[
            MultipleChoiceQuestion("ATM cell size?", ["48", "53", "64"], 1),
            NumericQuestion("Payload octets per cell?", 48),
        ]))
    return mits


def main() -> None:
    mits = deploy()
    nav = mits.add_user("student-home").navigator

    print("== Fig 5.3: entry screen ==")
    print(nav.start())

    print("\n== Fig 5.4: registration ==")
    nav.register("Ruiping W.", "Ottawa", "rw@mirl.example")
    mits.sim.run(until=mits.sim.now + 10)
    print("student number:", nav.student["student_number"])
    summaries = mits.wait(nav.client.list_courseware("networking"))
    rx = nav.course_introduction(summaries[0]["introduction_ref"])
    mits.sim.run(until=mits.sim.now + 30)
    print(f"introduction video streamed: {len(rx.data)} bytes "
          f"in {rx.finished_at - rx.first_chunk_at:.2f}s")
    mits.wait(nav.register_for_course("ELG5376"))

    print("\n== Fig 5.5: classroom ==")

    def on_ready(session):
        print("  loaded:", session.presenter.load_stats)
        print("  on screen:", session.presenter.visible())
        session.click("skip")
        session.add_bookmark("notes")
        print("  after skip:", session.presenter.visible())

    nav.enter_classroom("ELG5376", "atm-101", on_ready=on_ready)
    mits.sim.run(until=mits.sim.now + 60)
    position = nav.leave_classroom()
    mits.sim.run(until=mits.sim.now + 5)
    print(f"  resume position saved: {position:.2f}s")

    print("\n== Fig 5.6: profile update ==")
    nav.update_profile(address="125 Colonel By Dr")
    mits.sim.run(until=mits.sim.now + 5)
    print("  new address:", nav.student["address"])

    print("\n== Fig 5.7: library ==")
    docs = mits.wait(nav.browse_library())
    print("  documents:", [d["doc_id"] for d in docs])
    read = []
    nav.read_document("lib-cells", on_done=read.append)
    mits.sim.run(until=mits.sim.now + 30)
    print(f"  read lib-cells: {read[0]['bytes']} bytes, "
          f"links: {read[0].get('links', [])[:2]}")

    print("\n== bulletin, exercise, facilitator ==")
    posts = mits.wait(nav.read_bulletin("school.announcements"))
    print("  bulletin:", posts[0]["subject"])
    result = mits.wait(nav.take_exercise("atm-quiz-1", [1, 48]))
    print(f"  exercise score: {result['score']}/{result['max_score']}")
    answer = mits.wait(nav.ask_facilitator("how big is an ATM cell?"))
    print("  facilitator:", answer["answer"])

    nav.exit()
    print("\nsession trace:", nav.trace)
    print("db requests served:", mits.database.requests_served())


if __name__ == "__main__":
    main()
