#!/usr/bin/env python
"""Quickstart: author a tiny course, publish it, and take it on demand.

This walks the whole MITS pipeline in ~60 lines:

1. deploy the five sites over a simulated ATM campus network;
2. the media production center synthesises and publishes assets;
3. an author site compiles an interactive multimedia document into an
   MHEG container and publishes it as a Course-On-Demand;
4. a student registers at the TeleSchool and takes the course, with
   content streamed from the database at presentation time.

Run:  python examples/quickstart.py
"""

from repro.authoring import (
    InteractiveDocument, Scene, SceneObject, Section, TimelineEntry,
)
from repro.core import MitsSystem


def main() -> MitsSystem:
    # 1. deploy (production, author, database, facilitator, user sites)
    # with request tracing on, so every cross-site flow leaves a span
    # tree behind (inspect with `python -m repro.obs`)
    mits = MitsSystem(topology="star", tracing=True)
    print("deployed sites:", mits.snapshot()["sites"])

    # 2. produce and publish media
    assets = mits.produce_standard_assets("atm", seconds=2.0)
    print("published assets:",
          {name: f"{m.size} bytes" for name, m in assets.items()})

    # 3. author a one-scene course and publish it
    author = mits.add_author("author1", "atm-101", catalog=assets)
    scene = Scene(name="welcome", objects=[
        SceneObject(name="clip", kind="video",
                    content_ref="atm-intro-video"),
        SceneObject(name="notes", kind="text", content_ref="atm-notes",
                    position=(0, 300)),
        SceneObject(name="skip", kind="choice", label="Skip the video"),
    ])
    scene.timeline.add(TimelineEntry("clip", 0.0))
    scene.timeline.add(TimelineEntry("notes", 0.5, 1.5))
    scene.behavior.when_selected("skip", ("stop", "clip"))
    course = InteractiveDocument("atm-101", title="ATM Networks 101")
    course.add_section(Section(name="intro", scenes=[scene]))

    compiled = author.editor.compile_imd(course)
    print(f"compiled container: {len(compiled.encode())} bytes, "
          f"{len(compiled.container.objects)} MHEG objects")
    mits.wait(author.publish_courseware(
        compiled, courseware_id="atm-101", title="ATM Networks 101",
        program="networking", keywords=["networks/atm"],
        introduction_ref="atm-intro-video"))
    mits.wait(author.publish_course(
        course_code="ELG5376", name="ATM Networks", program="networking",
        courseware_id="atm-101"))

    # 4. a student registers and takes the course on demand
    nav = mits.add_user("user1").navigator
    nav.start()
    nav.register("Ada Lovelace", "1 Loop Road")
    mits.sim.run(until=mits.sim.now + 5)
    print("registered as", nav.student["student_number"])
    mits.wait(nav.register_for_course("ELG5376"))

    def on_ready(session):
        print(f"course loaded in {session.presenter.load_stats['load_time']:.3f}s "
              f"({session.presenter.load_stats['bytes']} bytes streamed)")
        print("on screen:", session.presenter.visible())
        print("clickable:", session.presenter.clickable())
        session.click("skip")
        print("after skip:", session.presenter.visible())

    nav.enter_classroom("ELG5376", "atm-101", on_ready=on_ready)
    mits.sim.run(until=mits.sim.now + 30)
    position = nav.leave_classroom()
    mits.sim.run(until=mits.sim.now + 2)
    print(f"left the classroom at position {position:.2f}s "
          "(saved for resume)")
    print("school statistics:", mits.database.db.statistics())
    return mits


if __name__ == "__main__":
    main()
