#!/usr/bin/env python
"""Multimedia conferencing: a three-way audio conference over ATM.

Two students and the on-line facilitator join an audio conference
(§5.2.1 "Meeting and Discussing").  Each leg is a 128 kb/s CBR voice
stream of 20 ms PCM frames; the bridge at the facilitator site mixes
and returns to every participant the sum of everyone else (mix-minus).

The example verifies the mix numerically and reports the mouth-to-ear
latency across the simulated network.

Run:  python examples/audio_conference.py
"""

import numpy as np

from repro.atm import Simulator
from repro.atm.topology import ocrinet_like
from repro.media.audio import MidiCodec, MidiEvent
from repro.school.conference_av import FRAME_SECONDS, build_conference


def main() -> None:
    sim = Simulator()
    net, spec = ocrinet_like(sim)
    print(f"network: {spec.name}, switches {spec.switches}")

    bridge, (student1, student2, facil) = build_conference(
        sim, net, "facilitator", ["user1", "user2", "production"])

    # three distinguishable voices: constant-valued frames per speaker
    def voice(level, seconds=0.5):
        return np.full(int(8000 * seconds), level, dtype=np.int16)

    student1.talk(voice(100))
    student2.talk(voice(200))
    # the facilitator hums an actual melody, rendered from MIDI
    melody = MidiCodec.render(
        [MidiEvent(0.0, 0.25, 69, 100), MidiEvent(0.25, 0.25, 72, 100)],
        sample_rate=8000)
    facil.talk(melody.astype(np.int16))

    sim.run(until=3.0)

    print(f"\nbridge: {bridge.frames_received} frames in, "
          f"{bridge.frames_mixed} windows mixed")
    for name, participant, own in (("student1", student1, 100),
                                   ("student2", student2, 200)):
        heard = participant.heard_audio()
        levels = sorted(set(np.unique(heard)) - {0})[:4]
        first = min(h.arrived_at for h in participant.heard)
        print(f"{name}: heard {len(participant.heard)} frames, "
              f"sample levels {levels} (own voice {own} absent), "
              f"first frame after {first * 1000:.1f} ms "
              f"(~{first / FRAME_SECONDS:.1f} frame times)")
    # mix-minus check: s1 hears (200 + melody), s2 hears (100 + melody),
    # so over the common frames their difference is exactly 100
    h1, h2 = student1.heard_audio(), student2.heard_audio()
    n = min(len(h1), len(h2), 8000 // 2)  # the half second all spoke
    diff = h1[:n].astype(int) - h2[:n].astype(int)
    assert set(np.unique(diff)) == {100}, set(np.unique(diff))
    print("\nmix-minus verified: each participant hears exactly the "
          "others' voices (difference of the two mixes == 100).")


if __name__ == "__main__":
    main()
