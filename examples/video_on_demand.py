#!/usr/bin/env python
"""Video on demand over ATM: QoS classes and the broadband argument.

Streams the same encoded lecture video from the database host to a
user site while a greedy background transfer competes for the trunk,
once under rt-VBR (reserved, policed) and once as best-effort UBR —
then sweeps the access bandwidth to find the stall cliff.

This is the measurable form of §1.3.3/§3.3: "for obtaining good
quality of service in real time presentation of dynamic media such as
video and audio, we suggest broadband network to be chosen".

Run:  python examples/video_on_demand.py
"""

from repro.atm import ServiceCategory, Simulator, TrafficContract
from repro.atm.topology import star_campus
from repro.media.production import MediaProductionCenter
from repro.media.video import VideoStream
from repro.streaming import VideoPlayer, VideoStreamSender


def stream_once(*, access_bps: float, category: ServiceCategory,
                video, background_load: bool) -> dict:
    sim = Simulator()
    net, _ = star_campus(sim, ["server", "client", "bulk-src", "bulk-dst"],
                         access_bps=access_bps,
                         buffer_cells=96 if background_load else 1024)
    stream = VideoStream(video.data)
    mean_cells = video.bitrate_bps() / 8 / 48  # payload cells per second

    if category is ServiceCategory.RT_VBR:
        contract = TrafficContract(ServiceCategory.RT_VBR,
                                   pcr=mean_cells * 8, scr=mean_cells * 2,
                                   mbs=400)
    else:
        contract = TrafficContract(ServiceCategory.UBR,
                                   pcr=access_bps / 424)
    player = VideoPlayer(sim, preroll=0.5, skip_grace=1.0,
                         frames_expected=stream.frames)
    vc = net.open_vc("server", "client", contract, player.on_pdu)
    sender = VideoStreamSender(sim, vc, video.data, lead=0.25)

    if background_load:
        # a greedy bulk transfer into the same destination switch port,
        # offering ~1.6x the link rate
        bulk = net.open_vc("bulk-src", "client",
                           TrafficContract(ServiceCategory.UBR,
                                           pcr=access_bps / 424),
                           lambda p, i: None)

        def pump():
            while True:
                bulk.send(bytes(10000))
                yield 10000 * 8 / (2.5 * access_bps)
        sim.spawn(pump())

    sender.start()
    sim.run(until=stream.duration + 10.0)
    s = player.stats
    return {"stalls": s.stalls, "rebuffer_s": round(s.rebuffer_time, 3),
            "played": s.frames_played, "skipped": s.frames_skipped}


def main() -> None:
    video = MediaProductionCenter().produce_video(
        "lecture", seconds=3.0, width=64, height=64, frame_rate=10.0)
    print(f"lecture video: {video.size} bytes, "
          f"{video.bitrate_bps():.0f} bps mean, "
          f"{VideoStream(video.data).peak_to_mean_ratio():.2f} peak/mean\n")

    print("== QoS under congestion (2 Mb/s access, greedy bulk flow) ==")
    for category in (ServiceCategory.RT_VBR, ServiceCategory.UBR):
        result = stream_once(access_bps=2e6, category=category,
                             video=video, background_load=True)
        print(f"  {category.name:7s}: {result}")

    print("\n== bandwidth sweep (no background load, UBR) ==")
    print(f"  {'access kb/s':>12s} {'stalls':>7s} {'rebuffer s':>11s}")
    for bw in (1000e3, 200e3, 64e3, 40e3, 33e3, 25e3, 15e3):
        result = stream_once(access_bps=bw, category=ServiceCategory.UBR,
                             video=video, background_load=False)
        print(f"  {bw / 1e3:12.0f} {result['stalls']:7d} "
              f"{result['rebuffer_s']:11.3f}")
    print("\nthe stall cliff sits at the video bitrate — below it the "
          "presentation degrades sharply (the thesis's broadband case).")


if __name__ == "__main__":
    main()
